//! `pcm-audit` — workspace-wide determinism & hygiene lints.
//!
//! Every number this reproduction reports is only trustworthy because the
//! pipeline is deterministic under a pinned seed. The runtime harnesses
//! (`pcm-verify`, `pcm-lab diff`, the thread-invariance tests) check that
//! property *after the fact*; this crate enforces it *by construction*
//! with a static pass over every `.rs` file, `Cargo.toml`, and the gate
//! script. See DESIGN.md §11 for the rule table and policy.
//!
//! The crate is fully self-contained: a minimal Rust lexer ([`lexer`]),
//! a total recursive-descent item parser ([`parser`]), a workspace
//! symbol index ([`index`]) feeding a conservative call graph
//! ([`graph`]), a table-driven rule engine ([`rules`]), and a
//! grandfathering baseline ([`baseline`]) — no external dependencies, so
//! it builds first and fast in the offline container.
//!
//! # Examples
//!
//! ```no_run
//! use std::path::Path;
//!
//! let report = pcm_audit::scan(Path::new("."), 1).expect("workspace scan");
//! let applied = pcm_audit::baseline::apply(report.findings.clone(), &[]);
//! println!("{}", pcm_audit::render(&report, &applied));
//! println!("{}", pcm_audit::render_json(&report, &applied));
//! ```

pub mod baseline;
pub mod graph;
pub mod index;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use rules::{Finding, RuleInfo, RULES};

use rules::{FileOutput, WorkspaceCtx};
use std::path::{Path, PathBuf};

/// Directory subtrees the walker never descends into, relative to root.
const SKIP_DIRS: &[&str] = &["target", ".git", "crates/audit/tests/fixtures"];

/// Everything one scan produced, before baseline filtering.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Source files scanned (`.rs` + manifests + script + docs).
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, rule, message).
    pub findings: Vec<Finding>,
    /// `file:line` of every `unsafe` site carrying a SAFETY comment.
    pub unsafe_inventory: Vec<String>,
}

/// Walks the workspace at `root` and runs every rule, fanning file checks
/// out over `jobs` threads. Output is independent of `jobs`: per-file
/// results are merged and re-sorted by path before the symbol index is
/// built, so the call-graph pass and the final report see the same world
/// regardless of scheduling.
///
/// # Errors
///
/// Returns a message if the workspace cannot be read.
pub fn scan(root: &Path, jobs: usize) -> Result<ScanReport, String> {
    let mut rs_files = Vec::new();
    let mut manifests = Vec::new();
    walk(root, root, &mut rs_files, &mut manifests)?;
    rs_files.sort();
    manifests.sort();

    let mut report = ScanReport {
        files_scanned: rs_files.len() + manifests.len(),
        ..Default::default()
    };

    // File-scoped rules, optionally in parallel. Chunked round-robin so a
    // directory of heavy files spreads across workers; determinism comes
    // from the sort below, not the schedule.
    let jobs = jobs.max(1).min(rs_files.len().max(1));
    let mut per_file: Vec<PerFile> = if jobs == 1 {
        rs_files
            .iter()
            .map(|p| process_rs(root, p))
            .collect::<Result<_, _>>()?
    } else {
        let chunks: Vec<Vec<&PathBuf>> = (0..jobs)
            .map(|w| rs_files.iter().skip(w).step_by(jobs).collect())
            .collect();
        let results: Vec<Result<Vec<_>, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| scope.spawn(|| chunk.iter().map(|p| process_rs(root, p)).collect()))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err("audit worker thread panicked".to_string()),
                })
                .collect()
        });
        let mut merged = Vec::new();
        for r in results {
            merged.extend(r?);
        }
        merged
    };
    // Parallel chunks interleave; restore path order so node ids (and
    // with them every downstream sort) are schedule-independent.
    per_file.sort_by(|a, b| a.unit.rel.cmp(&b.unit.rel));

    let mut registry_sources: Vec<(String, String)> = Vec::new();
    let mut units: Vec<index::Unit> = Vec::new();
    for pf in per_file {
        report.findings.extend(pf.out.findings);
        report.unsafe_inventory.extend(pf.out.unsafe_inventory);
        registry_sources.extend(pf.registry);
        units.push(pf.unit);
    }

    // Workspace context (manifests feed both the registry-dep rule and
    // the symbol index's crate-dependency closure).
    let mut ctx = WorkspaceCtx::default();
    for m in &manifests {
        ctx.manifests.push((rel_path(root, m), read(m)?));
    }
    let script = root.join("scripts_run_all.sh");
    if script.is_file() {
        report.files_scanned += 1;
        ctx.gate_script = Some(read(&script)?);
    }
    let md = root.join("EXPERIMENTS.md");
    if md.is_file() {
        report.files_scanned += 1;
        ctx.experiments_md = Some(read(&md)?);
    }
    registry_sources.sort();
    ctx.registry_names = registry_sources.into_iter().map(|(_, n)| n).collect();
    ctx.results_files = list_results(&root.join("results"))?;

    // Inter-procedural rules: symbol index → call graph → reachability.
    let idx = index::SymbolIndex::build(&units, &ctx.manifests);
    let graph_findings = graph::check(&units, &idx);
    report
        .findings
        .extend(apply_interproc_pragmas(graph_findings, &units));

    report.findings.extend(rules::check_workspace(&ctx));

    report.findings.sort();
    report.findings.dedup();
    report.unsafe_inventory.sort();
    Ok(report)
}

/// Per-file scan output: the analysis unit plus token-local findings.
struct PerFile {
    unit: index::Unit,
    out: FileOutput,
    registry: Vec<(String, String)>,
}

/// Lexes, checks, and parses one `.rs` file; experiment sources also
/// yield their registry names, keyed by path so parallel scheduling
/// cannot reorder them (the caller sorts by path before extracting).
fn process_rs(root: &Path, path: &Path) -> Result<PerFile, String> {
    let rel = rel_path(root, path);
    let lexed = lexer::lex(&read(path)?);
    let out = rules::check_file(&rel, &lexed);
    let registry = if rel.starts_with("crates/bench/src/experiments/") {
        rules::registry_names_in(&lexed)
            .into_iter()
            .map(|name| (rel.clone(), name))
            .collect()
    } else {
        Vec::new()
    };
    // Pragma findings were already emitted by check_file; swallow the
    // duplicates these collectors would re-report.
    let mut scratch = Vec::new();
    let pragmas = rules::collect_pragmas(&rel, &lexed.comments, &mut scratch);
    let mut root_findings = Vec::new();
    let roots = rules::collect_root_marks(&rel, &lexed.comments, &mut root_findings);
    let parsed = parser::parse(&lexed);
    let mut out = out;
    out.findings.extend(root_findings);
    out.findings.sort();
    out.findings.dedup();
    Ok(PerFile {
        unit: index::Unit {
            rel,
            lexed,
            parsed,
            pragmas,
            roots,
        },
        out,
        registry,
    })
}

/// Applies each file's inline pragmas to the inter-procedural findings.
/// `panic-reach` findings are additionally covered by `panic-unwrap` /
/// `panic-macro` pragmas at the site: a justified can't-happen panic is
/// justified from the wire loop too, without demanding a second pragma
/// on the same line.
fn apply_interproc_pragmas(findings: Vec<Finding>, units: &[index::Unit]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            let Ok(ui) = units.binary_search_by(|u| u.rel.as_str().cmp(f.file.as_str())) else {
                return true;
            };
            !units[ui].pragmas.iter().any(|p| {
                let line_hit = f.line == p.line || f.line == p.line + 1;
                let rule_hit = p.rule == f.rule
                    || (f.rule == "panic-reach"
                        && matches!(p.rule.as_str(), "panic-unwrap" | "panic-macro"));
                line_hit && rule_hit
            })
        })
        .collect()
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn walk(
    root: &Path,
    dir: &Path,
    rs: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = rel_path(root, &path);
        if path.is_dir() {
            if SKIP_DIRS.contains(&rel.as_str()) {
                continue;
            }
            walk(root, &path, rs, manifests)?;
        } else if rel.ends_with(".rs") {
            rs.push(path);
        } else if path.file_name().is_some_and(|n| n == "Cargo.toml") {
            manifests.push(path);
        }
    }
    Ok(())
}

fn list_results(dir: &Path) -> Result<Vec<String>, String> {
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut files = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        if entry.path().is_file() {
            files.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    files.sort();
    Ok(files)
}

/// Renders the deterministic findings report. Contains no timestamps or
/// machine state, so two clean runs are byte-identical — the property the
/// self-check test pins.
pub fn render(report: &ScanReport, applied: &baseline::Applied) -> String {
    let mut out = format!(
        "pcm-audit: {} files scanned, {} rules, {} finding(s) ({} baselined)\n",
        report.files_scanned,
        RULES.len(),
        applied.visible.len() + applied.baselined,
        applied.baselined,
    );
    for f in &applied.visible {
        out.push_str(&f.render());
        out.push('\n');
    }
    if !applied.exceeded.is_empty() {
        out.push_str("groups over their baselined count:\n");
        for e in &applied.exceeded {
            out.push_str(&format!("  {e}\n"));
        }
    }
    if !applied.stale.is_empty() {
        out.push_str("stale baseline entries (safe to tighten):\n");
        for s in &applied.stale {
            out.push_str(&format!("  {s}\n"));
        }
    }
    if report.unsafe_inventory.is_empty() {
        out.push_str("unsafe inventory: none\n");
    } else {
        out.push_str("unsafe inventory:\n");
        for u in &report.unsafe_inventory {
            out.push_str(&format!("  {u}\n"));
        }
    }
    if applied.visible.is_empty() {
        out.push_str("result: ok\n");
    } else {
        out.push_str(&format!(
            "result: FAIL ({} unbaselined finding(s))\n",
            applied.visible.len()
        ));
    }
    out
}

/// Renders the report as machine-readable JSON (the `--json` CLI output,
/// written to `results/audit.json` by the gate). Same determinism
/// contract as [`render`]: byte-identical across runs and `--jobs`.
pub fn render_json(report: &ScanReport, applied: &baseline::Applied) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"rules\": {},\n  \"baselined\": {},\n",
        report.files_scanned,
        RULES.len(),
        applied.baselined
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in applied.visible.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.message)
        ));
    }
    if !applied.visible.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    json_str_array(&mut out, "exceeded", &applied.exceeded);
    json_str_array(&mut out, "stale", &applied.stale);
    json_str_array(&mut out, "unsafe_inventory", &report.unsafe_inventory);
    out.push_str(&format!(
        "  \"result\": {}\n}}\n",
        json_str(if applied.visible.is_empty() {
            "ok"
        } else {
            "fail"
        })
    ));
    out
}

fn json_str_array(out: &mut String, key: &str, items: &[String]) {
    out.push_str(&format!("  \"{key}\": ["));
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(item));
    }
    out.push_str("],\n");
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
