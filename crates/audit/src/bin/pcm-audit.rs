//! CLI for the workspace determinism & hygiene audit.
//!
//! Exit status: 0 when every finding is baselined, 1 on unbaselined
//! findings, 2 on usage or I/O errors. The report is deterministic —
//! byte-identical across runs and `--jobs` settings — so the gate can
//! diff it.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
pcm-audit — workspace-wide determinism & hygiene lints (DESIGN.md §11)

USAGE:
    pcm-audit [OPTIONS]

OPTIONS:
    --root <DIR>            workspace root to audit [default: .]
    --baseline <FILE>       baseline file [default: <root>/audit-baseline.toml]
    --no-baseline           ignore any baseline file (report everything)
    --jobs <N>              worker threads for file checks [default: 1]
    --json                  machine-readable JSON report instead of text
    --write-baseline <FILE> write a fresh baseline for current findings and exit
    --list-rules            print the rule table and exit
    -h, --help              print this help and exit

Suppress a single finding in place with an inline pragma:
    // pcm-audit: allow(<rule>) — <reason>
Grandfathered findings live in audit-baseline.toml; counts only ratchet
down. Exit codes: 0 clean, 1 findings, 2 usage/IO error.";

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    jobs: usize,
    json: bool,
    write_baseline: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        no_baseline: false,
        jobs: 1,
        json: false,
        write_baseline: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value (see --help)"))
        };
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--no-baseline" => args.no_baseline = true,
            "--jobs" => {
                let v = value("--jobs")?;
                args.jobs = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs needs a positive integer, got '{v}'"))?;
            }
            "--json" => args.json = true,
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(value("--write-baseline")?))
            }
            "--list-rules" => args.list_rules = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (see --help)")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.list_rules {
        println!("{:<14} {:<10} summary", "rule", "scope");
        for r in pcm_audit::RULES {
            let scope = match r.scope {
                pcm_audit::rules::Scope::File => "file",
                pcm_audit::rules::Scope::Workspace => "workspace",
            };
            println!(
                "{:<14} {:<10} {}",
                r.id,
                scope,
                r.summary.split_whitespace().collect::<Vec<_>>().join(" ")
            );
        }
        return Ok(true);
    }

    let report = pcm_audit::scan(&args.root, args.jobs)?;

    if let Some(path) = args.write_baseline {
        let text = pcm_audit::baseline::render(&report.findings);
        std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "wrote {} ({} finding(s)); fill in the reasons",
            path.display(),
            report.findings.len()
        );
        return Ok(true);
    }

    let baseline_path = args
        .baseline
        .unwrap_or_else(|| args.root.join("audit-baseline.toml"));
    let entries = if !args.no_baseline && baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        pcm_audit::baseline::parse(&text)?
    } else {
        Vec::new()
    };
    let applied = pcm_audit::baseline::apply(report.findings.clone(), &entries);
    if args.json {
        print!("{}", pcm_audit::render_json(&report, &applied));
    } else {
        print!("{}", pcm_audit::render(&report, &applied));
    }
    Ok(applied.visible.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("pcm-audit: {msg}");
            ExitCode::from(2)
        }
    }
}
