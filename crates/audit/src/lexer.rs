//! A minimal, self-contained Rust lexer.
//!
//! The audit tool needs to reason about *code*, not about rule names that
//! happen to appear inside comments, doc examples, or string literals. A
//! full parser would be overkill (and the workspace is offline, so no
//! external crates); this lexer recognizes exactly the token classes the
//! rule engine cares about:
//!
//! * line (`//`) and nested block (`/* */`) comments — captured separately
//!   so pragma and `SAFETY:` scanning can see them;
//! * normal strings with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//!   depth), byte/C-string prefixes (`b"…"`, `br#"…"#`, `c"…"`);
//! * char literals vs. lifetimes (`'x'` vs. `'a`);
//! * identifiers (including raw `r#ident`), numbers, and single-character
//!   punctuation (multi-character operators arrive as adjacent puncts,
//!   which is all the pattern matching needs).
//!
//! The lexer is total: it never panics and never rejects input — on
//! malformed source it degrades to punctuation tokens, which at worst
//! costs a rule some precision, never a crash of the gate.

/// Token classes the rule engine distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// String literal of any flavor; `text` holds the inner content.
    Str,
    /// Char literal; `text` holds the inner content.
    Char,
    /// Lifetime (`'a`); `text` holds the name without the quote.
    Lifetime,
    /// Numeric literal.
    Num,
    /// One punctuation character; `text` is that character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token class.
    pub kind: Kind,
    /// Token text (see [`Kind`] for per-class conventions).
    pub text: String,
}

/// One comment (line or block) with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Raw comment text including the `//` / `/*` markers.
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

impl Tok {
    fn punct(line: u32, c: u8) -> Tok {
        Tok {
            line,
            kind: Kind::Punct,
            text: (c as char).to_string(),
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes one Rust source file.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(false, 0),
                b'\'' => self.char_or_lifetime(),
                _ if is_ident_start(b) => self.ident_or_prefixed_string(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    self.out.tokens.push(Tok::punct(self.line, b));
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            line: self.line,
            text: self.src[start..self.pos].to_string(),
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.out.comments.push(Comment {
            line: start_line,
            text: self.src[start..self.pos].to_string(),
        });
    }

    /// Lexes a `"…"` string (escapes honored) or, with `raw`, an
    /// `r##"…"##`-style raw string terminated by `"` plus `hashes` hashes.
    /// `self.pos` must sit on the opening quote.
    fn string(&mut self, raw: bool, hashes: usize) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        let content_start = self.pos;
        let mut content_end = self.bytes.len();
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if !raw && b == b'\\' {
                // A line-continuation escape (`\` before a newline) still
                // consumes that newline — keep the line count honest.
                if self.peek(1) == Some(b'\n') {
                    self.line += 1;
                }
                self.pos += 2;
            } else if b == b'"' {
                if raw {
                    let tail = &self.bytes[self.pos + 1..];
                    if tail.len() >= hashes && tail[..hashes].iter().all(|&h| h == b'#') {
                        content_end = self.pos;
                        self.pos += 1 + hashes;
                        break;
                    }
                    self.pos += 1;
                } else {
                    content_end = self.pos;
                    self.pos += 1;
                    break;
                }
            } else {
                self.pos += 1;
            }
        }
        let content_end = content_end.min(self.bytes.len());
        self.out.tokens.push(Tok {
            line: start_line,
            kind: Kind::Str,
            text: self.src[content_start..content_end.max(content_start)].to_string(),
        });
    }

    /// Disambiguates `'x'` / `'\n'` char literals from `'a` lifetimes.
    fn char_or_lifetime(&mut self) {
        let rest = &self.src[self.pos + 1..];
        let mut chars = rest.char_indices();
        let Some((_, first)) = chars.next() else {
            self.out.tokens.push(Tok::punct(self.line, b'\''));
            self.pos += 1;
            return;
        };
        if first == '\\' {
            // Escaped char literal: scan to the closing quote.
            let start = self.pos + 1;
            self.pos += 2; // quote + backslash
            self.pos += 1; // the escaped character itself (ASCII in practice)
                           // Multi-char escapes (\u{…}, \x41) run to the closing quote.
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.pos += 1;
            }
            let end = self.pos.min(self.bytes.len());
            self.pos += 1; // closing quote
            self.out.tokens.push(Tok {
                line: self.line,
                kind: Kind::Char,
                text: self.src[start..end.max(start)].to_string(),
            });
            return;
        }
        let after = chars.next().map(|(_, c)| c);
        if after == Some('\'') {
            // 'x' — a one-character literal.
            self.out.tokens.push(Tok {
                line: self.line,
                kind: Kind::Char,
                text: first.to_string(),
            });
            self.pos += 1 + first.len_utf8() + 1;
        } else if first.is_ascii_alphabetic() || first == '_' {
            // 'name — a lifetime.
            let start = self.pos + 1;
            self.pos += 1;
            while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                self.pos += 1;
            }
            self.out.tokens.push(Tok {
                line: self.line,
                kind: Kind::Lifetime,
                text: self.src[start..self.pos].to_string(),
            });
        } else {
            self.out.tokens.push(Tok::punct(self.line, b'\''));
            self.pos += 1;
        }
    }

    /// Lexes an identifier, or a string with an `r`/`b`/`br`/`c` prefix,
    /// or a raw identifier (`r#ident`).
    fn ident_or_prefixed_string(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        let word = &self.src[start..self.pos];
        let next = self.peek(0);
        let is_string_prefix = matches!(word, "r" | "b" | "br" | "c" | "rb");
        if is_string_prefix && next == Some(b'"') {
            self.string(word.contains('r'), 0);
            return;
        }
        if is_string_prefix && word.contains('r') && next == Some(b'#') {
            // Count hashes; `r#"…"#` is a raw string, `r#ident` a raw ident.
            let mut hashes = 0;
            while self.peek(hashes) == Some(b'#') {
                hashes += 1;
            }
            if self.peek(hashes) == Some(b'"') {
                self.pos += hashes;
                self.string(true, hashes);
                return;
            }
            if word == "r" && hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
                self.pos += 1; // the '#'
                let id_start = self.pos;
                while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                    self.pos += 1;
                }
                self.out.tokens.push(Tok {
                    line: self.line,
                    kind: Kind::Ident,
                    text: self.src[id_start..self.pos].to_string(),
                });
                return;
            }
        }
        self.out.tokens.push(Tok {
            line: self.line,
            kind: Kind::Ident,
            text: word.to_string(),
        });
    }

    fn number(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if is_ident_continue(b) {
                self.pos += 1;
            } else if b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Fractional part; `0..5` keeps its dots as punctuation.
                self.pos += 1;
            } else {
                break;
            }
        }
        self.out.tokens.push(Tok {
            line: self.line,
            kind: Kind::Num,
            text: self.src[start..self.pos].to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let toks = kinds("fn f(x: u32) -> u32 { x + 0x1F }");
        assert_eq!(toks[0], (Kind::Ident, "fn".into()));
        assert_eq!(toks[1], (Kind::Ident, "f".into()));
        assert!(toks.contains(&(Kind::Num, "0x1F".into())));
        assert!(toks.contains(&(Kind::Punct, "{".into())));
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let lexed = lex("let a = 1; // HashMap here\n/* Instant::now /* nested */ */ let b = 2;");
        assert!(lexed.tokens.iter().all(|t| t.text != "HashMap"));
        assert!(lexed.tokens.iter().all(|t| t.text != "Instant"));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[1].text.contains("nested"));
        assert_eq!(lexed.tokens.last().map(|t| t.text.as_str()), Some(";"));
    }

    #[test]
    fn strings_hide_rule_text() {
        let lexed =
            lex(r###"let s = "Instant::now unwrap()"; let r = r#"for x in map.iter()"#;"###);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Str)
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].text.contains("unwrap()"));
        assert!(strs[1].text.contains("map.iter()"));
        assert!(lexed.tokens.iter().all(|t| t.text != "unwrap"));
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let lexed = lex("let s = r##\"quote \"# inside\"##; end");
        let s = &lexed.tokens[3];
        assert_eq!(s.kind, Kind::Str);
        assert_eq!(s.text, "quote \"# inside");
        assert_eq!(lexed.tokens.last().map(|t| t.text.as_str()), Some("end"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { '\\n'; 'x' }");
        assert!(toks.contains(&(Kind::Lifetime, "a".into())));
        assert!(toks.contains(&(Kind::Char, "x".into())));
        assert!(toks.contains(&(Kind::Char, "\\n".into())));
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(Kind::Ident, "type".into())));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n\"multi\nline\"\nc");
        let c = lexed
            .tokens
            .iter()
            .find(|t| t.text == "c")
            .map(|t| t.line)
            .unwrap_or(0);
        assert_eq!(c, 5);
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds("let a = b\"bytes\"; let c = c\"cstr\"; let d = br#\"raw\"#;");
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == Kind::Str).collect();
        assert_eq!(strs.len(), 3);
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in ["\"unterminated", "'", "/* open", "r#\"open", "'\\", "r#"] {
            let _ = lex(src);
        }
    }
}
