//! A lightweight recursive-descent *item* parser over the [`crate::lexer`]
//! token stream.
//!
//! DESIGN.md §11 recorded the lexer's limitation: token-local rules see
//! names, not structure. This module recovers exactly the structure the
//! inter-procedural rules need — function items (including nested local
//! fns, impl methods, trait declarations, and `macro_rules!` bodies),
//! `impl` headers (self type + implemented trait), `use` trees with
//! aliasing and globs, and `pub` item headers — without attempting to be
//! a full Rust grammar.
//!
//! Like the lexer, the parser is **total**: it never panics and never
//! rejects input. Constructs it does not model (expressions, patterns,
//! generics bodies) are skipped token-by-token; a misparse degrades one
//! item's precision, never the audit gate. Item recognition is
//! syntactic: `fn` must be followed by an identifier (so `fn(u32)`
//! pointer types don't parse as items), attributes are skipped with
//! balanced brackets, and every block is consumed with balanced braces.

use crate::lexer::{Kind, Lexed, Tok};

/// Item visibility, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// Plain `pub` — part of the crate's external API.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — crate-internal.
    Scoped,
    /// No visibility keyword.
    Private,
}

/// One function-like item: a free fn, an impl method, a trait method
/// declaration (possibly bodyless), or a `macro_rules!` definition
/// (whose body tokens are scanned for calls like a fn body).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Item name (`r#` prefix already stripped by the lexer).
    pub name: String,
    /// 1-based line of the item header.
    pub line: u32,
    /// Visibility of the item itself.
    pub vis: Vis,
    /// Self type of the enclosing `impl`/`trait` block, if any.
    pub owner: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` methods.
    pub trait_of: Option<String>,
    /// Declared inside a `trait { … }` block (dispatch target set).
    pub in_trait_decl: bool,
    /// Half-open token range of the body, `start == end` when bodyless.
    pub body: (usize, usize),
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Index of the enclosing [`FnItem`] for local fns, if any.
    pub parent: Option<usize>,
    /// `macro_rules!` pseudo-function.
    pub is_macro: bool,
}

/// One leaf binding produced by a `use` tree: `use a::b::{c as d}` yields
/// `name = "d"`, `path = ["a", "b", "c"]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseBinding {
    /// Local name the import binds (`*` never appears here; see `glob`).
    pub name: String,
    /// Full path segments, aliases resolved away.
    pub path: Vec<String>,
    /// `use a::b::*` — `path` holds the prefix, `name` is empty.
    pub glob: bool,
}

/// One `pub` item header (fn, struct, enum, trait, const, static, type,
/// mod, union) for the `pub-dead` rule.
#[derive(Debug, Clone)]
pub struct PubItem {
    /// Item keyword (`"fn"`, `"struct"`, …).
    pub kind: &'static str,
    /// Item name.
    pub name: String,
    /// 1-based line of the header.
    pub line: u32,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Everything the parser recovered from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All function-like items, in source order (parents before children).
    pub fns: Vec<FnItem>,
    /// All `use` leaf bindings.
    pub uses: Vec<UseBinding>,
    /// All `pub` item headers.
    pub pub_items: Vec<PubItem>,
}

/// Per-token flags marking `#[cfg(test)]` regions.
///
/// After a `#[cfg(test)]` attribute (skipping any further attributes),
/// everything up to the end of the next balanced `{ … }` block — or a
/// terminating `;` for `mod tests;` forms — is test code.
pub fn test_region_flags(tokens: &[Tok]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_at(tokens, i) {
            // Skip to the end of this attribute, then any further `#[…]`.
            let mut j = skip_attribute(tokens, i);
            while j < tokens.len() && tokens[j].text == "#" {
                j = skip_attribute(tokens, j);
            }
            // Mark through the end of the item: the next balanced block.
            let mut depth = 0usize;
            let mut k = j;
            while k < tokens.len() {
                flags[k] = true;
                match tokens[k].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            i = k + 1;
        } else {
            i += 1;
        }
    }
    flags
}

fn is_cfg_test_at(tokens: &[Tok], i: usize) -> bool {
    let texts: Vec<&str> = tokens[i..]
        .iter()
        .take(7)
        .map(|t| t.text.as_str())
        .collect();
    texts.len() == 7
        && texts[0] == "#"
        && texts[1] == "["
        && texts[2] == "cfg"
        && texts[3] == "("
        && texts[4] == "test"
        && texts[5] == ")"
        && texts[6] == "]"
}

/// Returns the index just past a `#[…]` attribute starting at `i`.
pub(crate) fn skip_attribute(tokens: &[Tok], i: usize) -> usize {
    let mut j = i + 1; // past '#'
    if j < tokens.len() && tokens[j].text == "!" {
        j += 1; // inner attribute `#![…]`
    }
    if j < tokens.len() && tokens[j].text == "[" {
        let mut depth = 0usize;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    j
}

/// Parses one lexed file into its item structure.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let in_test = test_region_flags(&lexed.tokens);
    let mut p = Parser {
        toks: &lexed.tokens,
        in_test,
        out: ParsedFile::default(),
    };
    let end = p.toks.len();
    p.items(0, end, &Ctx::default());
    p.out
}

/// Item-position context threaded through recursion.
#[derive(Debug, Clone, Default)]
struct Ctx {
    owner: Option<String>,
    trait_of: Option<String>,
    in_trait_decl: bool,
    parent: Option<usize>,
}

struct Parser<'a> {
    toks: &'a [Tok],
    in_test: Vec<bool>,
    out: ParsedFile,
}

/// Identifiers that can never start a callable path / item name.
const KEYWORDS: &[&str] = &[
    "as",
    "async",
    "await",
    "break",
    "const",
    "continue",
    "crate",
    "dyn",
    "else",
    "enum",
    "extern",
    "false",
    "fn",
    "for",
    "if",
    "impl",
    "in",
    "let",
    "loop",
    "match",
    "mod",
    "move",
    "mut",
    "pub",
    "ref",
    "return",
    "self",
    "Self",
    "static",
    "struct",
    "super",
    "trait",
    "true",
    "type",
    "unsafe",
    "use",
    "where",
    "while",
    "union",
    "default",
    "macro_rules",
];

/// True for identifiers reserved by the language (loose superset; the
/// parser only needs "cannot be a call or item name").
pub fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word)
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == Kind::Ident)
    }

    /// Scans `[i, end)` for items, recursing into blocks. Non-item tokens
    /// are skipped one at a time — this same loop walks file scope, `mod`
    /// bodies, `impl`/`trait` bodies, and fn bodies (where it discovers
    /// nested local fns and scoped `use` statements).
    fn items(&mut self, mut i: usize, end: usize, ctx: &Ctx) {
        while i < end {
            let t = &self.toks[i];
            if t.kind != Kind::Ident && t.text != "#" {
                i += 1;
                continue;
            }
            if t.text == "#" {
                i = skip_attribute(self.toks, i).min(end);
                continue;
            }
            // Visibility + modifier run: `pub(crate) const unsafe extern "C" fn`.
            let (vis, after_vis) = self.visibility(i, end);
            let mut j = after_vis;
            while matches!(self.text(j), "const" | "unsafe" | "async" | "default")
                && self.text(j + 1) != "{"
            {
                // `const NAME`/`const {` are items/blocks, not modifiers:
                // only treat as modifier when something fn-ish follows.
                if self.text(j) == "const"
                    && !matches!(self.text(j + 1), "fn" | "unsafe" | "async" | "extern")
                {
                    break;
                }
                j += 1;
            }
            if self.text(j) == "extern" {
                j += 1;
                if self.toks.get(j).is_some_and(|t| t.kind == Kind::Str) {
                    j += 1;
                }
            }
            match self.text(j) {
                "fn" if self.is_ident(j + 1) && !is_keyword(self.text(j + 1)) => {
                    i = self.fn_item(j, end, vis, ctx);
                }
                "impl" if i == after_vis => {
                    i = self.impl_block(j, end, ctx);
                }
                "trait" if self.is_ident(j + 1) => {
                    i = self.trait_block(j, end, vis, ctx);
                }
                "mod" if self.is_ident(j + 1) => {
                    i = self.mod_block(j, end, vis, ctx);
                }
                "use" if i == after_vis || vis != Vis::Private => {
                    i = self.use_item(j, end);
                }
                "struct" | "enum" | "union" if self.is_ident(j + 1) => {
                    i = self.type_item(j, end, vis);
                }
                "type" | "const" | "static"
                    if self.is_ident(j + 1) && !is_keyword(self.text(j + 1)) =>
                {
                    i = self.terminated_item(j, end, vis);
                }
                "macro_rules" if self.text(j + 1) == "!" && self.is_ident(j + 2) => {
                    i = self.macro_item(j, end, ctx);
                }
                _ => {
                    // Not an item at this position; move past one token.
                    i = if j > i { j } else { i + 1 };
                }
            }
        }
    }

    /// Parses an optional `pub(…)?` prefix at `i`; returns the visibility
    /// and the index of the first token after it.
    fn visibility(&self, i: usize, end: usize) -> (Vis, usize) {
        if self.text(i) != "pub" {
            return (Vis::Private, i);
        }
        if self.text(i + 1) == "(" {
            let close = self.skip_balanced(i + 1, end, "(", ")");
            return (Vis::Scoped, close);
        }
        (Vis::Pub, i + 1)
    }

    /// Returns the index just past a balanced `open … close` group whose
    /// opening delimiter sits at `i`. Total: unbalanced input runs to `end`.
    fn skip_balanced(&self, i: usize, end: usize, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// Skips a `<…>` generics group at `i`, tolerating `->` inside bounds.
    fn skip_generics(&self, i: usize, end: usize) -> usize {
        if self.text(i) != "<" {
            return i;
        }
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "<" => depth += 1,
                ">" if j > 0 && self.text(j - 1) == "-" => {} // `->` in bounds
                ">" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                // A block or semicolon at this level means the `<` was a
                // comparison, not generics: bail out where we started.
                "{" | ";" if depth <= 1 => return i + 1,
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Parses `fn name …` with the `fn` keyword at `i`.
    fn fn_item(&mut self, i: usize, end: usize, vis: Vis, ctx: &Ctx) -> usize {
        let name_tok = &self.toks[i + 1];
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let in_test = self.in_test.get(i).copied().unwrap_or(false);
        let mut j = i + 2;
        j = self.skip_generics(j, end);
        if self.text(j) == "(" {
            j = self.skip_balanced(j, end, "(", ")");
        }
        // Return type / where clause: scan to the body `{` or a `;` at
        // bracket depth 0 (angle depth is irrelevant: braces cannot occur
        // inside a type except const-generic blocks, which we accept
        // losing).
        let mut depth = 0usize;
        while j < end {
            match self.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => break,
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let idx = self.out.fns.len();
        if self.text(j) == ";" || j >= end {
            self.out.fns.push(FnItem {
                name: name.clone(),
                line,
                vis,
                owner: ctx.owner.clone(),
                trait_of: ctx.trait_of.clone(),
                in_trait_decl: ctx.in_trait_decl,
                body: (j, j),
                in_test,
                parent: ctx.parent,
                is_macro: false,
            });
            if vis == Vis::Pub && !in_test {
                self.out.pub_items.push(PubItem {
                    kind: "fn",
                    name,
                    line,
                    in_test,
                });
            }
            return (j + 1).min(end);
        }
        let body_end = self.skip_balanced(j, end, "{", "}");
        self.out.fns.push(FnItem {
            name: name.clone(),
            line,
            vis,
            owner: ctx.owner.clone(),
            trait_of: ctx.trait_of.clone(),
            in_trait_decl: ctx.in_trait_decl,
            body: (j + 1, body_end.saturating_sub(1)),
            in_test,
            parent: ctx.parent,
            is_macro: false,
        });
        if vis == Vis::Pub && !in_test {
            self.out.pub_items.push(PubItem {
                kind: "fn",
                name,
                line,
                in_test,
            });
        }
        // Recurse into the body for nested local fns and scoped uses.
        let body_ctx = Ctx {
            owner: None,
            trait_of: None,
            in_trait_decl: false,
            parent: Some(idx),
        };
        self.items(j + 1, body_end.saturating_sub(1), &body_ctx);
        body_end
    }

    /// Parses `impl … {` with the `impl` keyword at `i`. The self type is
    /// the last angle-depth-0 path segment before the body (after `for`
    /// when a trait is implemented); the trait is the last depth-0 segment
    /// before `for`.
    fn impl_block(&mut self, i: usize, end: usize, ctx: &Ctx) -> usize {
        let mut j = i + 1;
        j = self.skip_generics(j, end);
        let mut angle = 0usize;
        let mut last_seg: Option<String> = None;
        let mut trait_seg: Option<String> = None;
        let mut body = end;
        while j < end {
            let t = &self.toks[j];
            match t.text.as_str() {
                "<" => angle += 1,
                ">" if j > 0 && self.text(j - 1) == "-" => {}
                ">" => angle = angle.saturating_sub(1),
                "{" if angle == 0 => {
                    body = j;
                    break;
                }
                ";" if angle == 0 => return j + 1, // `impl Trait for Type;` never valid, bail
                "for" if angle == 0 => {
                    trait_seg = last_seg.take();
                }
                "where" if angle == 0 => {
                    // The where clause may mention types; stop collecting.
                    while j < end && self.text(j) != "{" {
                        j += 1;
                    }
                    continue;
                }
                _ => {
                    if t.kind == Kind::Ident
                        && angle == 0
                        && !matches!(t.text.as_str(), "dyn" | "mut" | "as" | "const")
                    {
                        last_seg = Some(t.text.clone());
                    }
                }
            }
            j += 1;
        }
        if body >= end {
            return end;
        }
        let body_end = self.skip_balanced(body, end, "{", "}");
        let inner = Ctx {
            owner: last_seg,
            trait_of: trait_seg,
            in_trait_decl: false,
            parent: ctx.parent,
        };
        self.items(body + 1, body_end.saturating_sub(1), &inner);
        body_end
    }

    /// Parses `trait Name … { … }` with the `trait` keyword at `i`.
    fn trait_block(&mut self, i: usize, end: usize, vis: Vis, ctx: &Ctx) -> usize {
        let name_tok = &self.toks[i + 1];
        let name = name_tok.text.clone();
        let in_test = self.in_test.get(i).copied().unwrap_or(false);
        if vis == Vis::Pub && !in_test {
            self.out.pub_items.push(PubItem {
                kind: "trait",
                name: name.clone(),
                line: name_tok.line,
                in_test,
            });
        }
        // Find the body brace at angle depth 0.
        let mut j = i + 2;
        let mut angle = 0usize;
        while j < end {
            match self.text(j) {
                "<" => angle += 1,
                ">" if self.text(j - 1) == "-" => {}
                ">" => angle = angle.saturating_sub(1),
                "{" if angle == 0 => break,
                ";" if angle == 0 => return j + 1, // trait alias
                _ => {}
            }
            j += 1;
        }
        if j >= end {
            return end;
        }
        let body_end = self.skip_balanced(j, end, "{", "}");
        let inner = Ctx {
            owner: Some(name),
            trait_of: None,
            in_trait_decl: true,
            parent: ctx.parent,
        };
        self.items(j + 1, body_end.saturating_sub(1), &inner);
        body_end
    }

    /// Parses `mod name { … }` or `mod name;` with `mod` at `i`.
    fn mod_block(&mut self, i: usize, end: usize, vis: Vis, ctx: &Ctx) -> usize {
        let name_tok = &self.toks[i + 1];
        let in_test = self.in_test.get(i).copied().unwrap_or(false);
        if vis == Vis::Pub && !in_test {
            self.out.pub_items.push(PubItem {
                kind: "mod",
                name: name_tok.text.clone(),
                line: name_tok.line,
                in_test,
            });
        }
        if self.text(i + 2) == "{" {
            let body_end = self.skip_balanced(i + 2, end, "{", "}");
            let inner = Ctx {
                owner: None,
                trait_of: None,
                in_trait_decl: false,
                parent: ctx.parent,
            };
            self.items(i + 3, body_end.saturating_sub(1), &inner);
            return body_end;
        }
        (i + 3).min(end) // `mod name ;`
    }

    /// Parses a `use …;` tree with `use` at `i`, expanding groups,
    /// aliases, and globs into leaf [`UseBinding`]s.
    fn use_item(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        let mut prefix: Vec<String> = Vec::new();
        let after = self.use_tree(&mut j, end, &mut prefix);
        // Consume through the terminating `;`.
        let mut k = after;
        while k < end && self.text(k) != ";" {
            k += 1;
        }
        (k + 1).min(end)
    }

    /// Parses one use-tree node starting at `*j`; `prefix` holds the path
    /// so far. Returns the index after the node.
    fn use_tree(&mut self, j: &mut usize, end: usize, prefix: &mut Vec<String>) -> usize {
        loop {
            let t = self.text(*j);
            if t == "*" {
                self.out.uses.push(UseBinding {
                    name: String::new(),
                    path: prefix.clone(),
                    glob: true,
                });
                *j += 1;
                break;
            }
            if t == "{" {
                // Group: comma-separated sub-trees sharing the prefix.
                *j += 1;
                loop {
                    match self.text(*j) {
                        "}" => {
                            *j += 1;
                            break;
                        }
                        "," => *j += 1,
                        "" => break,
                        _ => {
                            let mut sub = prefix.clone();
                            self.use_tree(j, end, &mut sub);
                        }
                    }
                    if *j >= end {
                        break;
                    }
                }
                break;
            }
            if !self.is_ident(*j) {
                break;
            }
            let seg = self.text(*j).to_string();
            *j += 1;
            if seg == "self" && !prefix.is_empty() {
                // `a::b::{self}` binds `b` itself.
                let name = prefix.last().cloned().unwrap_or_default();
                self.out.uses.push(UseBinding {
                    name,
                    path: prefix.clone(),
                    glob: false,
                });
                break;
            }
            prefix.push(seg.clone());
            if self.text(*j) == ":" && self.text(*j + 1) == ":" {
                *j += 2;
                continue;
            }
            if self.text(*j) == "as" && self.is_ident(*j + 1) {
                let alias = self.text(*j + 1).to_string();
                self.out.uses.push(UseBinding {
                    name: alias,
                    path: prefix.clone(),
                    glob: false,
                });
                *j += 2;
                break;
            }
            self.out.uses.push(UseBinding {
                name: seg,
                path: prefix.clone(),
                glob: false,
            });
            break;
        }
        *j
    }

    /// Parses `struct|enum|union Name …` (through `;` or a balanced block).
    fn type_item(&mut self, i: usize, end: usize, vis: Vis) -> usize {
        let kind: &'static str = match self.text(i) {
            "struct" => "struct",
            "enum" => "enum",
            _ => "union",
        };
        let name_tok = &self.toks[i + 1];
        let in_test = self.in_test.get(i).copied().unwrap_or(false);
        if vis == Vis::Pub && !in_test {
            self.out.pub_items.push(PubItem {
                kind,
                name: name_tok.text.clone(),
                line: name_tok.line,
                in_test,
            });
        }
        // Skip to the end of the item: a `;` at depth 0 (unit or tuple
        // struct) or past a balanced `{ … }` (field block / enum body).
        let mut j = i + 2;
        let mut angle = 0usize;
        while j < end {
            match self.text(j) {
                "<" => angle += 1,
                ">" if self.text(j - 1) == "-" => {}
                ">" => angle = angle.saturating_sub(1),
                "(" => j = self.skip_balanced(j, end, "(", ")") - 1,
                "{" if angle == 0 => return self.skip_balanced(j, end, "{", "}"),
                ";" if angle == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Parses `type|const|static Name … ;`.
    fn terminated_item(&mut self, i: usize, end: usize, vis: Vis) -> usize {
        let kind: &'static str = match self.text(i) {
            "type" => "type",
            "const" => "const",
            _ => "static",
        };
        let off = if self.text(i + 1) == "mut" { 2 } else { 1 }; // `static mut`
        let name_tok = &self.toks[(i + off).min(end.saturating_sub(1))];
        let in_test = self.in_test.get(i).copied().unwrap_or(false);
        if vis == Vis::Pub && !in_test && name_tok.kind == Kind::Ident {
            self.out.pub_items.push(PubItem {
                kind,
                name: name_tok.text.clone(),
                line: name_tok.line,
                in_test,
            });
        }
        let mut j = i + 1;
        let mut depth = 0usize;
        while j < end {
            match self.text(j) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Parses `macro_rules! name { … }` into a macro pseudo-fn whose body
    /// tokens are scanned for calls like any other body.
    fn macro_item(&mut self, i: usize, end: usize, ctx: &Ctx) -> usize {
        let name_tok = &self.toks[i + 2];
        let mut j = i + 3;
        while j < end && !matches!(self.text(j), "{" | "(" | "[") {
            j += 1;
        }
        if j >= end {
            return end;
        }
        let (open, close) = match self.text(j) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            _ => ("{", "}"),
        };
        let body_end = self.skip_balanced(j, end, open, close);
        self.out.fns.push(FnItem {
            name: name_tok.text.clone(),
            line: name_tok.line,
            vis: Vis::Private,
            owner: None,
            trait_of: None,
            in_trait_decl: false,
            body: (j + 1, body_end.saturating_sub(1)),
            in_test: self.in_test.get(i).copied().unwrap_or(false),
            parent: ctx.parent,
            is_macro: true,
        });
        body_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    fn fn_named<'a>(p: &'a ParsedFile, name: &str) -> &'a FnItem {
        p.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn `{name}` in {:?}", p.fns))
    }

    #[test]
    fn free_fns_and_visibility() {
        let p = parsed(
            "pub fn api() {}\n\
             pub(crate) fn internal() {}\n\
             fn private(x: u32) -> u32 { x }\n",
        );
        assert_eq!(p.fns.len(), 3);
        assert_eq!(fn_named(&p, "api").vis, Vis::Pub);
        assert_eq!(fn_named(&p, "internal").vis, Vis::Scoped);
        assert_eq!(fn_named(&p, "private").vis, Vis::Private);
        let names: Vec<_> = p.pub_items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["api"]);
    }

    #[test]
    fn impl_methods_get_owner_and_trait() {
        let p = parsed(
            "struct Engine;\n\
             impl Engine { pub fn write(&mut self) {} }\n\
             impl std::fmt::Display for Engine {\n\
                 fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
             }\n\
             impl<T: Clone> From<Vec<T>> for Engine { fn from(_: Vec<T>) -> Self { Engine } }\n",
        );
        let write = fn_named(&p, "write");
        assert_eq!(write.owner.as_deref(), Some("Engine"));
        assert_eq!(write.trait_of, None);
        let fmt = fn_named(&p, "fmt");
        assert_eq!(fmt.owner.as_deref(), Some("Engine"));
        assert_eq!(fmt.trait_of.as_deref(), Some("Display"));
        let from = fn_named(&p, "from");
        assert_eq!(from.owner.as_deref(), Some("Engine"));
        assert_eq!(from.trait_of.as_deref(), Some("From"));
    }

    #[test]
    fn trait_decls_and_default_bodies() {
        let p = parsed(
            "pub trait Scheme {\n\
                 fn map(&self, x: u64) -> u64;\n\
                 fn digest(&self) -> u64 { 0 }\n\
             }\n",
        );
        let map = fn_named(&p, "map");
        assert!(map.in_trait_decl);
        assert_eq!(map.owner.as_deref(), Some("Scheme"));
        assert_eq!(map.body.0, map.body.1, "bodyless decl");
        let digest = fn_named(&p, "digest");
        assert!(digest.body.1 > digest.body.0, "default body captured");
        assert!(p.pub_items.iter().any(|i| i.name == "Scheme"));
    }

    #[test]
    fn nested_local_fns_have_parents() {
        let p = parsed(
            "fn outer() -> u64 {\n\
                 fn helper(x: u64) -> u64 { x }\n\
                 helper(1)\n\
             }\n\
             fn helper(x: u64) -> u64 { x + 1 }\n",
        );
        assert_eq!(p.fns.len(), 3);
        let outer_idx = p.fns.iter().position(|f| f.name == "outer").expect("outer");
        let nested = p
            .fns
            .iter()
            .find(|f| f.name == "helper" && f.parent.is_some())
            .expect("nested helper");
        assert_eq!(nested.parent, Some(outer_idx));
        assert!(p
            .fns
            .iter()
            .any(|f| f.name == "helper" && f.parent.is_none()));
    }

    #[test]
    fn use_trees_expand_groups_aliases_and_globs() {
        let p = parsed(
            "use pcm_util::{seeded_rng, simd::batch_xor as bx, pool::*};\n\
             use crate::engine::Engine;\n\
             use std::io::Read;\n",
        );
        assert!(p.uses.contains(&UseBinding {
            name: "seeded_rng".into(),
            path: vec!["pcm_util".into(), "seeded_rng".into()],
            glob: false,
        }));
        assert!(p.uses.contains(&UseBinding {
            name: "bx".into(),
            path: vec!["pcm_util".into(), "simd".into(), "batch_xor".into()],
            glob: false,
        }));
        assert!(p.uses.contains(&UseBinding {
            name: String::new(),
            path: vec!["pcm_util".into(), "pool".into()],
            glob: true,
        }));
        assert!(p.uses.contains(&UseBinding {
            name: "Engine".into(),
            path: vec!["crate".into(), "engine".into(), "Engine".into()],
            glob: false,
        }));
    }

    #[test]
    fn use_group_self_binds_the_prefix() {
        let p = parsed("use pcm_compress::bdi::{self, compress_into};\n");
        assert!(p.uses.contains(&UseBinding {
            name: "bdi".into(),
            path: vec!["pcm_compress".into(), "bdi".into()],
            glob: false,
        }));
        assert!(p.uses.contains(&UseBinding {
            name: "compress_into".into(),
            path: vec!["pcm_compress".into(), "bdi".into(), "compress_into".into()],
            glob: false,
        }));
    }

    #[test]
    fn pub_items_cover_types_consts_and_mods() {
        let p = parsed(
            "pub struct Line(u64);\n\
             pub enum Kind { A, B }\n\
             pub const BITS: usize = 512;\n\
             pub static NAME: &str = \"x\";\n\
             pub type Alias = u64;\n\
             pub mod wire { pub fn frame() {} }\n\
             struct Hidden;\n",
        );
        let names: Vec<_> = p.pub_items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["Line", "Kind", "BITS", "NAME", "Alias", "wire", "frame"]
        );
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let p = parsed(
            "pub fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 pub fn helper() {}\n\
                 #[test]\n\
                 fn t() { helper(); }\n\
             }\n",
        );
        assert!(!fn_named(&p, "live").in_test);
        assert!(fn_named(&p, "helper").in_test);
        assert!(fn_named(&p, "t").in_test);
        // cfg(test) pub items never land in the pub-dead candidate set.
        assert_eq!(p.pub_items.iter().filter(|i| i.name == "helper").count(), 0);
    }

    #[test]
    fn macro_rules_bodies_are_fn_like() {
        let p = parsed(
            "macro_rules! fire {\n\
                 ($x:expr) => { helper($x) };\n\
             }\n\
             fn helper(x: u64) -> u64 { x }\n",
        );
        let m = fn_named(&p, "fire");
        assert!(m.is_macro);
        assert!(m.body.1 > m.body.0);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parsed("pub fn apply(f: fn(u32) -> u32, x: u32) -> u32 { f(x) }\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "apply");
    }

    #[test]
    fn modifier_runs_before_fn() {
        let p = parsed(
            "pub const fn cbits() -> u32 { 1 }\n\
             pub unsafe fn raw() {}\n\
             pub extern \"C\" fn ffi() {}\n\
             const MAX: usize = 4;\n",
        );
        for name in ["cbits", "raw", "ffi"] {
            assert_eq!(fn_named(&p, name).vis, Vis::Pub, "{name}");
        }
        assert!(p.pub_items.iter().all(|i| i.name != "MAX"));
    }

    #[test]
    fn total_on_garbage() {
        for src in [
            "fn",
            "fn (",
            "impl {",
            "use ;",
            "use a::{b",
            "trait {",
            "pub pub pub",
            "fn f(x: u32 { }",
            "struct S<T where { }",
            "macro_rules!",
        ] {
            let _ = parsed(src);
        }
    }

    #[test]
    fn where_clauses_and_generics_do_not_confuse_bodies() {
        let p = parsed(
            "pub fn generic<T: Iterator<Item = u64>>(it: T) -> u64\n\
             where T: Clone {\n\
                 it.clone().sum()\n\
             }\n",
        );
        let f = fn_named(&p, "generic");
        assert!(f.body.1 > f.body.0);
    }
}
