//! Conservative call graph + the inter-procedural rules built on it:
//! `hotpath-alloc`, `panic-reach`, and `pub-dead`.
//!
//! # Resolution policy (DESIGN.md §11)
//!
//! The graph never under-approximates on purpose: when a call cannot be
//! resolved precisely, it resolves to *every* plausible target rather
//! than none, so "no banned call is reachable" remains a sound claim.
//!
//! * **Bare calls** `f(…)` resolve through the scopes a reader would
//!   check: innermost enclosing local fn, then file top-level fns, then
//!   `use` aliases, then glob imports, then any same-crate fn named `f`.
//! * **Path calls** `a::b::f(…)` expand `use` aliases on the head
//!   segment, map crate idents (`pcm_util` → `crates/util`), then try an
//!   `(owner, name)` method lookup before falling back to a name lookup
//!   inside the target crate (or the caller's dependency closure when
//!   the head is a local module the parser cannot see across files).
//!   `std`/`core`/`alloc` paths are external and resolve to nothing —
//!   the *banned-call* checks catch `Vec::new` etc. at the call site
//!   itself, not through resolution.
//! * **Method calls** `x.m(…)` and UFCS tails `<T as Tr>::m(…)` resolve
//!   to every library fn named `m` in the caller crate's transitive
//!   dependency closure — conservative trait-object dispatch: all impls
//!   are possible receivers.
//! * **Macro calls** `m!(…)` resolve to `macro_rules!` pseudo-fns, whose
//!   bodies are scanned like any other body.
//!
//! Reachability is a BFS from the `// pcm-audit: root(<rule>)`-annotated
//! fns, roots processed in (file, line) order so every finding is
//! attributed to the first root that reaches it and reports are
//! byte-identical across runs and `--jobs` counts.

use crate::index::{crate_of, FnNode, SymbolIndex, Unit};
use crate::lexer::{Kind, Tok};
use crate::parser::is_keyword;
use crate::rules::{self, Finding, ROOT_RULES};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names that allocate (ban set for `hotpath-alloc`).
const ALLOC_METHODS: &[&str] = &["clone", "push", "to_string"];
/// `Type::fn` paths that allocate.
const ALLOC_PATHS: &[(&str, &str)] = &[("Vec", "new"), ("Box", "new")];
/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];
/// Macros that panic (kept in sync with the `panic-macro` rule).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Vendored dependency shims: their pub surface mirrors the upstream
/// crates and is exempt from `pub-dead`.
const SHIM_CRATES: &[&str] = &["rand", "serde", "serde_derive", "proptest", "criterion"];

/// One call site inside a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `f(…)` — plain identifier call.
    Bare(String),
    /// `a::b::f(…)` — path call, segments in order.
    Path(Vec<String>),
    /// `x.m(…)` — method call.
    Method(String),
    /// `<T as Tr>::m(…)` / `Ty::<A>::m(…)` — UFCS tail; resolved like a
    /// method call (all impls).
    Ufcs(String),
    /// `m!(…)` — macro invocation.
    Macro(String),
}

/// All analyzable sites of one fn body.
#[derive(Debug, Default)]
pub struct BodySites {
    /// Calls, in source order.
    pub calls: Vec<(Callee, u32)>,
    /// Lines with slice-indexing expressions (`x[i]`, `buf[a..b]`).
    pub index_lines: Vec<u32>,
}

/// Extracts call and indexing sites from `toks[range)`, skipping the
/// `skip` sub-ranges (nested local fns own their sites).
pub fn body_sites(toks: &[Tok], range: (usize, usize), skip: &[(usize, usize)]) -> BodySites {
    let mut out = BodySites::default();
    let (start, end) = range;
    let end = end.min(toks.len());
    let text = |i: usize| toks.get(i).map_or("", |t: &Tok| t.text.as_str());
    let mut i = start;
    'scan: while i < end {
        for &(s, e) in skip {
            if i >= s && i < e {
                i = e;
                continue 'scan;
            }
        }
        let t = &toks[i];
        // Macro invocation: `name ! (` / `[` / `{`.
        if t.kind == Kind::Ident
            && !is_keyword(&t.text)
            && text(i + 1) == "!"
            && matches!(text(i + 2), "(" | "[" | "{")
        {
            out.calls.push((Callee::Macro(t.text.clone()), t.line));
            i += 2;
            continue;
        }
        // Indexing: `[` after a value-ending token.
        if t.text == "[" && i > start {
            let p = &toks[i - 1];
            let value_end =
                (p.kind == Kind::Ident && !is_keyword(&p.text)) || p.text == ")" || p.text == "]";
            if value_end {
                out.index_lines.push(t.line);
            }
        }
        // Call: `(` after a callee path.
        if t.text == "(" && i > start {
            if let Some(site) = callee_before(toks, start, i) {
                out.calls.push(site);
            }
        }
        i += 1;
    }
    out
}

/// Reconstructs the callee ending just before the `(` at `open`, if the
/// preceding tokens form one. Returns `None` for definitions (`fn f(`),
/// grouping parens, and tuple expressions.
fn callee_before(toks: &[Tok], start: usize, open: usize) -> Option<(Callee, u32)> {
    let text = |i: usize| toks.get(i).map_or("", |t: &Tok| t.text.as_str());
    let mut j = open.checked_sub(1)?;
    // Skip a turbofish `::<…>` between the path and the parens.
    if text(j) == ">" {
        let mut depth = 0usize;
        let mut k = j;
        loop {
            match text(k) {
                ">" => depth += 1,
                "<" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k == start || k == 0 {
                return None;
            }
            k -= 1;
        }
        if k < 2 || text(k - 1) != ":" || text(k - 2) != ":" {
            return None;
        }
        j = k.checked_sub(3)?;
    }
    let tail = toks.get(j)?;
    if tail.kind != Kind::Ident || is_keyword(&tail.text) {
        return None;
    }
    // `fn name(` is a definition, not a call.
    if j >= 1 && text(j - 1) == "fn" {
        return None;
    }
    // Walk the `ident :: ident :: …` path backwards.
    let mut segs = vec![tail.text.clone()];
    let mut head = j;
    let mut ufcs = false;
    while head >= 3 && text(head - 1) == ":" && text(head - 2) == ":" {
        let prev = &toks[head - 3];
        if prev.kind == Kind::Ident {
            let is_path_seg = !is_keyword(&prev.text)
                || matches!(prev.text.as_str(), "crate" | "self" | "Self" | "super");
            if !is_path_seg {
                break;
            }
            segs.push(prev.text.clone());
            head -= 3;
            if matches!(prev.text.as_str(), "crate" | "self" | "super") {
                break; // path heads; nothing precedes them
            }
        } else if prev.text == ">" {
            // `<T as Tr>::m(` / `Ty::<A>::m(`: conservative dispatch.
            ufcs = true;
            break;
        } else {
            break;
        }
    }
    segs.reverse();
    let line = tail.line;
    if ufcs {
        return Some((Callee::Ufcs(segs.pop()?), line));
    }
    if segs.len() == 1 {
        if head >= 1 && text(head - 1) == "." {
            return Some((Callee::Method(segs.pop()?), line));
        }
        return Some((Callee::Bare(segs.pop()?), line));
    }
    // A path preceded by `.` cannot occur in valid Rust; treat the whole
    // thing as a path call either way.
    Some((Callee::Path(segs), line))
}

/// The resolver: index + units, with small helpers for scope lookups.
pub struct Graph<'a> {
    units: &'a [Unit],
    index: &'a SymbolIndex,
    /// Memoized per-node site extraction.
    sites: BTreeMap<usize, BodySites>,
}

impl<'a> Graph<'a> {
    /// Builds the resolver over an index.
    pub fn new(units: &'a [Unit], index: &'a SymbolIndex) -> Graph<'a> {
        Graph {
            units,
            index,
            sites: BTreeMap::new(),
        }
    }

    fn node(&self, id: usize) -> &FnNode {
        &self.index.nodes[id]
    }

    /// Sites of a node's own body (children carved out), memoized.
    fn sites_of(&mut self, id: usize) -> &BodySites {
        if !self.sites.contains_key(&id) {
            let n = self.node(id);
            let unit = &self.units[n.file];
            let skip: Vec<(usize, usize)> = self
                .index
                .children(self.units, id)
                .into_iter()
                .map(|c| self.index.nodes[c].body)
                .collect();
            let sites = body_sites(&unit.lexed.tokens, n.body, &skip);
            self.sites.insert(id, sites);
        }
        &self.sites[&id]
    }

    /// All node ids a call site may reach, sorted and deduped.
    pub fn resolve(&self, site: &Callee, caller: usize) -> Vec<usize> {
        let mut out = match site {
            Callee::Bare(name) => self.resolve_bare(name, caller),
            Callee::Path(segs) => self.resolve_path(segs, caller),
            Callee::Method(name) | Callee::Ufcs(name) => self.resolve_by_name(name, caller),
            Callee::Macro(name) => self.resolve_macro(name, caller),
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    fn resolve_bare(&self, name: &str, caller: usize) -> Vec<usize> {
        let c = self.node(caller);
        let unit = &self.units[c.file];
        // 1. Local fns, innermost scope first (shadowing).
        let mut scope = Some(c.fn_idx);
        loop {
            let parent = scope;
            let hits: Vec<usize> = self.index.by_file[c.file]
                .iter()
                .copied()
                .filter(|&id| {
                    let n = self.node(id);
                    n.name == name && unit.parsed.fns[n.fn_idx].parent == parent && !n.is_macro
                })
                .collect();
            if !hits.is_empty() {
                return hits;
            }
            match parent {
                Some(p) => scope = unit.parsed.fns[p].parent,
                None => break, // just checked file top level
            }
        }
        // 2. `use` alias.
        for b in &unit.parsed.uses {
            if !b.glob && b.name == name {
                let hits = self.resolve_abs(&b.path, caller);
                if !hits.is_empty() {
                    return hits;
                }
            }
        }
        // 3. Glob imports.
        let mut glob_hits = Vec::new();
        for b in &unit.parsed.uses {
            if b.glob {
                let mut path = b.path.clone();
                path.push(name.to_string());
                glob_hits.extend(self.resolve_abs(&path, caller));
            }
        }
        if !glob_hits.is_empty() {
            return glob_hits;
        }
        // 4. Same-crate fallback (cross-module `crate::…` re-exports and
        // sibling modules the file-level parse cannot see).
        self.named_in_crates(name, std::iter::once(c.krate.as_str()))
    }

    fn resolve_path(&self, segs: &[String], caller: usize) -> Vec<usize> {
        let c = self.node(caller);
        let unit = &self.units[c.file];
        // Expand a `use` alias on the head segment (`use pcm_compress::bdi;`
        // makes `bdi::compress_into(…)` a `pcm_compress::bdi::…` call).
        if let Some(head) = segs.first() {
            for b in &unit.parsed.uses {
                if !b.glob && &b.name == head {
                    let mut full = b.path.clone();
                    full.extend_from_slice(&segs[1..]);
                    let hits = self.resolve_abs(&full, caller);
                    if !hits.is_empty() {
                        return hits;
                    }
                }
            }
        }
        self.resolve_abs(segs, caller)
    }

    /// Resolves an absolute-ish path after alias expansion.
    fn resolve_abs(&self, segs: &[String], caller: usize) -> Vec<usize> {
        let c = self.node(caller);
        let Some(head) = segs.first() else {
            return Vec::new();
        };
        let Some(last) = segs.last() else {
            return Vec::new();
        };
        // External std-family paths: not ours to resolve.
        if matches!(head.as_str(), "std" | "core" | "alloc") {
            return Vec::new();
        }
        // `Self::helper()` → the caller's own impl block.
        if head == "Self" {
            if let Some(owner) = &c.owner {
                if let Some(ids) = self.index.by_owner.get(&(owner.clone(), last.clone())) {
                    let hits: Vec<usize> = ids
                        .iter()
                        .copied()
                        .filter(|&id| self.node(id).krate == c.krate)
                        .collect();
                    if !hits.is_empty() {
                        return hits;
                    }
                }
            }
            return self.named_in_crates(last, std::iter::once(c.krate.as_str()));
        }
        // Crate-qualified path: `pcm_util::simd::f`, `crate::engine::f`.
        let target_crate = if matches!(head.as_str(), "crate" | "self" | "super") {
            Some(c.krate.clone())
        } else {
            self.index.crate_idents.get(head).cloned()
        };
        if let Some(tk) = target_crate {
            let rest = &segs[1..];
            if rest.is_empty() {
                return Vec::new();
            }
            if rest.len() >= 2 {
                if let Some(ids) = self
                    .index
                    .by_owner
                    .get(&(rest[rest.len() - 2].clone(), last.clone()))
                {
                    let hits: Vec<usize> = ids
                        .iter()
                        .copied()
                        .filter(|&id| self.node(id).krate == tk)
                        .collect();
                    if !hits.is_empty() {
                        return hits;
                    }
                }
            }
            return self.named_in_crates(last, std::iter::once(tk.as_str()));
        }
        // Unknown head: a local module or a type. Try `(owner, name)`
        // across the caller's dependency closure, then fall back to a
        // conservative name lookup in the closure.
        if segs.len() >= 2 {
            let owner = &segs[segs.len() - 2];
            if let Some(ids) = self.index.by_owner.get(&(owner.clone(), last.clone())) {
                let closure = self.index.closure(&c.krate);
                let hits: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&id| closure.contains(&self.node(id).krate))
                    .collect();
                if !hits.is_empty() {
                    return hits;
                }
            }
            // A type-qualified call (`Vec::new`, `String::from`) whose owner
            // matches no workspace impl is an external type's associated fn:
            // fanning out by bare name would drag in every workspace `new`.
            if owner.starts_with(|ch: char| ch.is_ascii_uppercase()) {
                return Vec::new();
            }
        }
        self.resolve_by_name(last, caller)
    }

    /// All target fns named `name` in the caller's dependency closure.
    fn resolve_by_name(&self, name: &str, caller: usize) -> Vec<usize> {
        let closure = self.index.closure(&self.node(caller).krate);
        self.named_in_crates(name, closure.iter().map(String::as_str))
    }

    fn named_in_crates<'s>(&self, name: &str, crates: impl Iterator<Item = &'s str>) -> Vec<usize> {
        let crates: BTreeSet<&str> = crates.collect();
        self.index
            .by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| crates.contains(self.node(id).krate.as_str()))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn resolve_macro(&self, name: &str, caller: usize) -> Vec<usize> {
        let closure = self.index.closure(&self.node(caller).krate);
        self.index
            .macros
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| closure.contains(&self.node(id).krate))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// One annotated analysis root.
#[derive(Debug)]
struct Root {
    node: usize,
    rule: &'static str,
}

/// Runs the inter-procedural rules; findings come back un-pragma'd (the
/// caller applies each file's pragmas).
pub fn check(units: &[Unit], index: &SymbolIndex) -> Vec<Finding> {
    let mut graph = Graph::new(units, index);
    let mut findings = Vec::new();
    let roots = collect_roots(units, index, &mut findings);
    for rule in ROOT_RULES {
        let rule_roots: Vec<&Root> = roots.iter().filter(|r| r.rule == *rule).collect();
        check_reachability(&mut graph, rule, &rule_roots, &mut findings);
    }
    check_pub_dead(units, &mut findings);
    findings.sort();
    findings.dedup();
    findings
}

/// Matches `root(<rule>)` marks to the fn item they annotate: the first
/// fn whose header starts within 3 lines below the mark (attributes may
/// sit between). A mark that attaches to nothing is itself a finding.
fn collect_roots(units: &[Unit], index: &SymbolIndex, findings: &mut Vec<Finding>) -> Vec<Root> {
    let mut roots = Vec::new();
    for (file, unit) in units.iter().enumerate() {
        for mark in &unit.roots {
            let target = index.by_file[file]
                .iter()
                .copied()
                .filter(|&id| {
                    let n = &index.nodes[id];
                    !n.is_macro && n.line > mark.line && n.line <= mark.line + 3
                })
                .min_by_key(|&id| index.nodes[id].line);
            match target {
                Some(node) => roots.push(Root {
                    node,
                    rule: mark.rule,
                }),
                None => findings.push(Finding {
                    file: unit.rel.clone(),
                    line: mark.line,
                    rule: "pragma",
                    message: format!(
                        "root({}) pragma attaches to no fn item within 3 lines",
                        mark.rule
                    ),
                }),
            }
        }
    }
    // (file, line) order → deterministic first-root attribution.
    roots.sort_by_key(|r| {
        (
            units[index.nodes[r.node].file].rel.clone(),
            index.nodes[r.node].line,
        )
    });
    roots
}

/// BFS from each root in order; every node first reached by an earlier
/// root keeps that attribution. Each reached node's own body is scanned
/// for the rule's banned sites.
/// True when a call at `line` inside `node` is covered by an
/// `allow(rule)` pragma (same line or the line below the pragma comment).
fn call_pruned(graph: &Graph, node: usize, rule: &str, line: u32) -> bool {
    let unit = &graph.units[graph.index.nodes[node].file];
    unit.pragmas
        .iter()
        .any(|p| p.rule == rule && (p.line == line || p.line + 1 == line))
}

fn check_reachability(
    graph: &mut Graph,
    rule: &'static str,
    roots: &[&Root],
    findings: &mut Vec<Finding>,
) {
    // visited: node → (root node, predecessor on the BFS path).
    let mut visited: BTreeMap<usize, (usize, Option<usize>)> = BTreeMap::new();
    for root in roots {
        if visited.contains_key(&root.node) {
            continue;
        }
        visited.insert(root.node, (root.node, None));
        let mut queue = VecDeque::from([root.node]);
        while let Some(id) = queue.pop_front() {
            let calls: Vec<(Callee, u32)> = graph.sites_of(id).calls.clone();
            for (callee, line) in &calls {
                // An `allow(<rule>)` pragma on a call line vets the call as
                // out-of-band (e.g. one-time setup): the site is suppressed
                // AND the callee's subtree is pruned from this rule's walk.
                if call_pruned(graph, id, rule, *line) {
                    continue;
                }
                for next in graph.resolve(callee, id) {
                    if let std::collections::btree_map::Entry::Vacant(e) = visited.entry(next) {
                        e.insert((root.node, Some(id)));
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    // Deterministic site scan: visited is a BTreeMap keyed by node id,
    // and node ids follow (file, declaration) order.
    for (&id, &(root, _)) in &visited {
        let n = &graph.index.nodes[id];
        let rel = graph.units[n.file].rel.clone();
        let root_name = graph.index.nodes[root].name.clone();
        let chain = chain_string(graph, &visited, id);
        let sites = graph.sites_of(id);
        match rule {
            "hotpath-alloc" => {
                for (callee, line) in &sites.calls {
                    let what = match callee {
                        Callee::Method(m) | Callee::Ufcs(m)
                            if ALLOC_METHODS.contains(&m.as_str()) =>
                        {
                            Some(format!(".{m}()"))
                        }
                        Callee::Path(segs) if segs.len() >= 2 => {
                            let pair =
                                (segs[segs.len() - 2].as_str(), segs[segs.len() - 1].as_str());
                            ALLOC_PATHS
                                .contains(&pair)
                                .then(|| format!("{}::{}", pair.0, pair.1))
                        }
                        Callee::Macro(m) if ALLOC_MACROS.contains(&m.as_str()) => {
                            Some(format!("{m}!"))
                        }
                        _ => None,
                    };
                    if let Some(what) = what {
                        findings.push(Finding {
                            file: rel.clone(),
                            line: *line,
                            rule: "hotpath-alloc",
                            message: format!(
                                "`{what}` allocates on a hot path: reachable from root \
                                 `{root_name}` via {chain}; reuse caller-owned scratch \
                                 buffers instead"
                            ),
                        });
                    }
                }
            }
            "panic-reach" => {
                // Panic macros and bare unwrap anywhere reachable; expect
                // and slice indexing only inside the serve crate, where
                // graceful degradation of the wire loop is the invariant
                // (DESIGN.md §11 documents this scoping).
                let in_serve = rel.starts_with("crates/serve/src");
                for (callee, line) in &sites.calls {
                    let what = match callee {
                        Callee::Macro(m) if PANIC_MACROS.contains(&m.as_str()) => {
                            Some(format!("{m}!"))
                        }
                        Callee::Method(m) if m == "unwrap" => Some(".unwrap()".to_string()),
                        Callee::Method(m) if m == "expect" && in_serve => {
                            Some(".expect()".to_string())
                        }
                        _ => None,
                    };
                    if let Some(what) = what {
                        findings.push(Finding {
                            file: rel.clone(),
                            line: *line,
                            rule: "panic-reach",
                            message: format!(
                                "`{what}` reachable from connection-handler root \
                                 `{root_name}` via {chain}: the serve loop must degrade \
                                 gracefully — return a typed error instead"
                            ),
                        });
                    }
                }
                if in_serve {
                    for line in &sites.index_lines {
                        findings.push(Finding {
                            file: rel.clone(),
                            line: *line,
                            rule: "panic-reach",
                            message: format!(
                                "slice indexing reachable from connection-handler root \
                                 `{root_name}` via {chain}: index with .get() and return \
                                 a typed error on short input"
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

/// `root -> … -> node` fn-name chain for a finding message.
fn chain_string(
    graph: &Graph,
    visited: &BTreeMap<usize, (usize, Option<usize>)>,
    id: usize,
) -> String {
    let mut names = vec![graph.index.nodes[id].name.clone()];
    let mut cur = id;
    while let Some(&(_, Some(prev))) = visited.get(&cur) {
        names.push(graph.index.nodes[prev].name.clone());
        cur = prev;
        if names.len() > 12 {
            names.push("…".to_string());
            break;
        }
    }
    names.reverse();
    names.join(" -> ")
}

/// `pub-dead`: plain-`pub` items in library code that nothing outside
/// the defining crate references. References are identifier tokens in
/// any file outside the crate's library tree (other crates, and the
/// crate's own tests/bins/benches, which link as external users) plus
/// word matches in doc comments anywhere (doctests compile as external
/// crates, so rustdoc examples legitimately keep an item alive).
fn check_pub_dead(units: &[Unit], findings: &mut Vec<Finding>) {
    // Per-unit ident sets and doc-comment word sets.
    let idents: Vec<BTreeSet<&str>> = units
        .iter()
        .map(|u| {
            u.lexed
                .tokens
                .iter()
                .filter(|t| t.kind == Kind::Ident)
                .map(|t| t.text.as_str())
                .collect()
        })
        .collect();
    // Idents inside #[cfg(test)] regions: a unit test exercising an item is a
    // consumer even when it lives in the defining crate (or the same file).
    let test_idents: Vec<BTreeSet<&str>> = units
        .iter()
        .map(|u| {
            let flags = crate::parser::test_region_flags(&u.lexed.tokens);
            u.lexed
                .tokens
                .iter()
                .zip(flags)
                .filter(|(t, in_test)| *in_test && t.kind == Kind::Ident)
                .map(|(t, _)| t.text.as_str())
                .collect()
        })
        .collect();
    let mut doc_words: BTreeSet<String> = BTreeSet::new();
    for u in units {
        for c in &u.lexed.comments {
            let is_doc = c.text.starts_with("///")
                || c.text.starts_with("//!")
                || c.text.starts_with("/**")
                || c.text.starts_with("/*!");
            if !is_doc {
                continue;
            }
            let mut word = String::new();
            for ch in c.text.chars().chain(std::iter::once(' ')) {
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    word.push(ch);
                } else if !word.is_empty() {
                    doc_words.insert(std::mem::take(&mut word));
                }
            }
        }
    }
    for (ui, unit) in units.iter().enumerate() {
        if !rules::is_lib_code(&unit.rel) {
            continue;
        }
        let krate = crate_of(&unit.rel);
        if SHIM_CRATES.contains(&krate.as_str()) {
            continue;
        }
        for item in &unit.parsed.pub_items {
            if item.in_test {
                continue;
            }
            let referenced = doc_words.contains(&item.name)
                || units.iter().enumerate().any(|(vi, v)| {
                    if vi == ui {
                        return test_idents[vi].contains(item.name.as_str());
                    }
                    let outside = crate_of(&v.rel) != krate || !rules::is_lib_code(&v.rel);
                    if outside {
                        idents[vi].contains(item.name.as_str())
                    } else {
                        test_idents[vi].contains(item.name.as_str())
                    }
                });
            if !referenced {
                findings.push(Finding {
                    file: unit.rel.clone(),
                    line: item.line,
                    rule: "pub-dead",
                    message: format!(
                        "pub {} `{}` is never referenced outside crate `{}`: delete it, \
                         narrow it to pub(crate), or pragma-annotate a deliberate API \
                         surface",
                        item.kind, item.name, krate
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn unit(rel: &str, src: &str) -> Unit {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let mut findings = Vec::new();
        let pragmas = rules::collect_pragmas(rel, &lexed.comments, &mut findings);
        let roots = rules::collect_root_marks(rel, &lexed.comments, &mut findings);
        Unit {
            rel: rel.to_string(),
            lexed,
            parsed,
            pragmas,
            roots,
        }
    }

    fn run(units: Vec<Unit>) -> Vec<Finding> {
        let index = SymbolIndex::build(&units, &[]);
        check(&units, &index)
    }

    fn sites(src: &str) -> BodySites {
        let lexed = lex(src);
        body_sites(&lexed.tokens, (0, lexed.tokens.len()), &[])
    }

    #[test]
    fn call_site_extraction_kinds() {
        let s = sites("helper(1); x.push(2); pcm_util::simd::fold(3); vec![4]; Vec::new();");
        assert!(s.calls.contains(&(Callee::Bare("helper".into()), 1)));
        assert!(s.calls.contains(&(Callee::Method("push".into()), 1)));
        assert!(s.calls.contains(&(
            Callee::Path(vec!["pcm_util".into(), "simd".into(), "fold".into()]),
            1
        )));
        assert!(s.calls.contains(&(Callee::Macro("vec".into()), 1)));
        assert!(s
            .calls
            .contains(&(Callee::Path(vec!["Vec".into(), "new".into()]), 1)));
    }

    #[test]
    fn ufcs_and_turbofish() {
        let s = sites(
            "<Engine as Scheme>::map(x); collect::<Vec<u64>>(); Vec::<u8>::with_capacity(4);",
        );
        assert!(s.calls.contains(&(Callee::Ufcs("map".into()), 1)));
        assert!(s.calls.contains(&(Callee::Bare("collect".into()), 1)));
        assert!(s.calls.contains(&(Callee::Ufcs("with_capacity".into()), 1)));
    }

    #[test]
    fn indexing_detection() {
        let s = sites("let a = buf[0]; let b = f()[1]; let c: [u64; 4] = [0; 4]; #[test] vec![x];");
        assert_eq!(s.index_lines, vec![1, 1], "buf[0] and f()[1] only");
    }

    #[test]
    fn hotpath_alloc_trips_through_a_chain() {
        let units = vec![unit(
            "crates/core/src/hot.rs",
            "// pcm-audit: root(hotpath-alloc) — test root\n\
             pub fn hot_loop(xs: &mut Vec<u64>) { stage(xs); }\n\
             fn stage(xs: &mut Vec<u64>) { xs.push(1); }\n\
             fn cold() -> String { format!(\"unreachable\") }\n",
        )];
        let f = run(units);
        let hits: Vec<_> = f.iter().filter(|f| f.rule == "hotpath-alloc").collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 3);
        assert!(
            hits[0].message.contains("hot_loop -> stage"),
            "{}",
            hits[0].message
        );
    }

    #[test]
    fn panic_reach_scopes_indexing_to_serve() {
        let handler = "use pcm_core::helper;\n\
                       // pcm-audit: root(panic-reach) — test handler\n\
                       pub fn serve_stream(b: &[u8]) -> u64 { decode(b) }\n\
                       fn decode(b: &[u8]) -> u64 { helper(b) }\n";
        let serve = unit("crates/serve/src/daemon.rs", handler);
        let core = unit(
            "crates/core/src/lib.rs",
            "pub fn helper(b: &[u8]) -> u64 { b[0] as u64 }\n",
        );
        let f = run(vec![core, serve]);
        // Indexing outside crates/serve/src is policy-exempt…
        assert!(
            !f.iter().any(|f| f.rule == "panic-reach"),
            "indexing in core must not fire: {f:?}"
        );
        // …but a panic macro there still is.
        let serve = unit("crates/serve/src/daemon.rs", handler);
        let core = unit(
            "crates/core/src/lib.rs",
            "pub fn helper(b: &[u8]) -> u64 { panic!(\"boom\") }\n",
        );
        let f = run(vec![core, serve]);
        assert_eq!(
            f.iter().filter(|f| f.rule == "panic-reach").count(),
            1,
            "{f:?}"
        );
    }

    #[test]
    fn method_calls_dispatch_to_all_impls() {
        let units = vec![
            unit(
                "crates/serve/src/daemon.rs",
                "// pcm-audit: root(panic-reach) — test handler\n\
                 pub fn serve_stream(s: &dyn Scheme) { s.remap(1); }\n",
            ),
            unit(
                "crates/wear/src/lib.rs",
                "pub struct A; impl Scheme for A { fn remap(&self, x: u64) -> u64 { x } }\n\
                 pub struct B; impl Scheme for B { fn remap(&self, x: u64) -> u64 { todo!() } }\n",
            ),
        ];
        let f = run(units);
        assert_eq!(
            f.iter().filter(|f| f.rule == "panic-reach").count(),
            1,
            "conservative dispatch must reach impl B's todo!: {f:?}"
        );
    }

    #[test]
    fn shadowed_local_fn_wins_over_top_level() {
        let units = vec![unit(
            "crates/core/src/hot.rs",
            "// pcm-audit: root(hotpath-alloc) — test root\n\
             pub fn hot_loop() {\n\
                 fn stage() {}\n\
                 stage();\n\
             }\n\
             fn stage() { vec![1]; }\n",
        )];
        let f = run(units);
        assert!(
            !f.iter().any(|f| f.rule == "hotpath-alloc"),
            "local stage() shadows the allocating top-level one: {f:?}"
        );
    }

    #[test]
    fn use_alias_resolves_cross_crate() {
        let units = vec![
            unit(
                "crates/core/src/hot.rs",
                "use pcm_util::mix as fold;\n\
                 // pcm-audit: root(hotpath-alloc) — test root\n\
                 pub fn hot_loop() { fold(1); }\n",
            ),
            unit(
                "crates/util/src/lib.rs",
                "pub fn mix(x: u64) -> u64 { x.to_string(); x }\n",
            ),
        ];
        let f = run(units);
        assert_eq!(
            f.iter().filter(|f| f.rule == "hotpath-alloc").count(),
            1,
            "aliased cross-crate call must be followed: {f:?}"
        );
    }

    #[test]
    fn macro_bodies_are_traversed() {
        let units = vec![unit(
            "crates/core/src/hot.rs",
            "macro_rules! fire { ($x:expr) => { stage($x) }; }\n\
             // pcm-audit: root(hotpath-alloc) — test root\n\
             pub fn hot_loop() { fire!(1); }\n\
             fn stage(x: u64) -> Vec<u64> { vec![x] }\n",
        )];
        let f = run(units);
        assert_eq!(
            f.iter().filter(|f| f.rule == "hotpath-alloc").count(),
            1,
            "macro body call must be followed into stage: {f:?}"
        );
    }

    #[test]
    fn pub_dead_finds_the_orphan_only() {
        let units = vec![
            unit(
                "crates/core/src/lib.rs",
                "pub fn used() {}\npub fn orphan() {}\npub(crate) fn scoped() {}\n",
            ),
            unit("crates/serve/src/lib.rs", "pub fn caller() { used(); }\n"),
            unit("tests/smoke.rs", "fn t() { caller(); }\n"),
        ];
        let f = run(units);
        let dead: Vec<_> = f.iter().filter(|f| f.rule == "pub-dead").collect();
        assert_eq!(dead.len(), 1, "{dead:?}");
        assert!(dead[0].message.contains("`orphan`"));
    }

    #[test]
    fn doc_comment_reference_keeps_an_item_alive() {
        let units = vec![unit(
            "crates/core/src/lib.rs",
            "/// Call [`documented`] from a doctest.\npub fn documented() {}\n",
        )];
        let f = run(units);
        assert!(!f.iter().any(|f| f.rule == "pub-dead"), "{f:?}");
    }

    #[test]
    fn root_pragma_must_attach() {
        let units = vec![unit(
            "crates/core/src/lib.rs",
            "// pcm-audit: root(hotpath-alloc) — floats in space\n\nconst X: u64 = 1;\n",
        )];
        let f = run(units);
        assert!(
            f.iter()
                .any(|f| f.rule == "pragma" && f.message.contains("attaches to no fn")),
            "{f:?}"
        );
    }
}
