//! Call-graph engine coverage: edge cases of the conservative resolver
//! (dependency-closure fan-out, external type-qualified paths, pragma
//! subtree pruning, root-mark attachment) plus the `pub-dead` keep-alive
//! policies, exercised over in-memory units and throwaway workspaces.

use pcm_audit::index::{FnNode, SymbolIndex, Unit};
use pcm_audit::{graph, lexer, parser, rules, Finding};
use std::fs;
use std::path::PathBuf;

/// Builds one analysis unit the same way the scanner does.
fn unit(rel: &str, src: &str) -> Unit {
    let lexed = lexer::lex(src);
    let mut sink = Vec::new();
    let pragmas = rules::collect_pragmas(rel, &lexed.comments, &mut sink);
    let roots = rules::collect_root_marks(rel, &lexed.comments, &mut sink);
    assert!(
        sink.is_empty(),
        "fixture source has malformed pragmas: {sink:?}"
    );
    let parsed = parser::parse(&lexed);
    Unit {
        rel: rel.to_string(),
        lexed,
        parsed,
        pragmas,
        roots,
    }
}

fn graph_findings(units: Vec<Unit>, manifests: &[(String, String)]) -> Vec<Finding> {
    let idx = SymbolIndex::build(&units, manifests);
    graph::check(&units, &idx)
}

fn manifest(rel: &str, name: &str, deps: &[&str]) -> (String, String) {
    let mut text = format!("[package]\nname = \"{name}\"\n[dependencies]\n");
    for d in deps {
        text.push_str(&format!("{d} = {{ path = \"../{d}\" }}\n"));
    }
    (rel.to_string(), text)
}

const HOT_ROOT: &str = "// pcm-audit: root(hotpath-alloc) — test hot loop\n";

#[test]
fn method_fanout_is_restricted_to_the_dependency_closure() {
    // `a` depends on `b` but not on `c`; both define `fn refresh` with an
    // allocation. The conservative fan-out must reach b's and skip c's.
    let units = vec![
        unit(
            "crates/a/src/lib.rs",
            &format!("{HOT_ROOT}pub fn hot_loop(x: &S) {{ x.refresh(); }}\n"),
        ),
        unit(
            "crates/b/src/lib.rs",
            "pub fn refresh() { let v = vec![1]; drop(v); }\n",
        ),
        unit(
            "crates/c/src/lib.rs",
            "pub fn refresh() { let v = vec![2]; drop(v); }\n",
        ),
    ];
    let manifests = [
        manifest("crates/a/Cargo.toml", "a", &["b"]),
        manifest("crates/b/Cargo.toml", "b", &[]),
        manifest("crates/c/Cargo.toml", "c", &[]),
    ];
    let findings = graph_findings(units, &manifests);
    let alloc: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "hotpath-alloc")
        .collect();
    assert_eq!(alloc.len(), 1, "{findings:#?}");
    assert_eq!(alloc[0].file, "crates/b/src/lib.rs");
}

#[test]
fn uppercase_owner_paths_outside_the_workspace_stay_external() {
    // `Scratch::make` matches no workspace impl: it must be treated as an
    // external associated fn, NOT fanned out to the free `fn make` below.
    let units = vec![unit(
        "crates/a/src/lib.rs",
        &format!(
            "{HOT_ROOT}pub fn hot_loop() -> u64 {{ Scratch::make(1) }}\n\
             pub fn make(x: u64) -> u64 {{ let v = vec![x]; v[0] }}\n"
        ),
    )];
    let manifests = [manifest("crates/a/Cargo.toml", "a", &[])];
    let findings = graph_findings(units, &manifests);
    assert!(
        findings.iter().all(|f| f.rule != "hotpath-alloc"),
        "{findings:#?}"
    );
}

#[test]
fn lowercase_module_paths_still_fan_out_by_name() {
    // A snake-case path head is a module, not an external type: the final
    // segment resolves by name inside the closure.
    let units = vec![
        unit(
            "crates/a/src/lib.rs",
            &format!("{HOT_ROOT}pub fn hot_loop() {{ scratch::make(1); }}\n"),
        ),
        unit(
            "crates/a/src/scratch.rs",
            "pub fn make(x: u64) -> u64 { let v = vec![x]; v[0] }\n",
        ),
    ];
    let manifests = [manifest("crates/a/Cargo.toml", "a", &[])];
    let findings = graph_findings(units, &manifests);
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == "hotpath-alloc")
            .count(),
        1,
        "{findings:#?}"
    );
}

#[test]
fn allow_pragma_on_a_call_line_prunes_the_callee_subtree() {
    let caller =
        |pragma: &str| format!("{HOT_ROOT}pub fn hot_loop() {{\n{pragma}    setup();\n}}\n");
    let callee = "pub fn setup() { let v = vec![0]; drop(v); }\n";
    let manifests = [manifest("crates/a/Cargo.toml", "a", &[])];

    let unpruned = graph_findings(
        vec![
            unit("crates/a/src/lib.rs", &caller("")),
            unit("crates/a/src/setup.rs", callee),
        ],
        &manifests,
    );
    assert_eq!(
        unpruned
            .iter()
            .filter(|f| f.rule == "hotpath-alloc")
            .count(),
        1,
        "{unpruned:#?}"
    );

    let pruned = graph_findings(
        vec![
            unit(
                "crates/a/src/lib.rs",
                &caller("    // pcm-audit: allow(hotpath-alloc) — one-time setup, vetted\n"),
            ),
            unit("crates/a/src/setup.rs", callee),
        ],
        &manifests,
    );
    assert!(
        pruned.iter().all(|f| f.rule != "hotpath-alloc"),
        "{pruned:#?}"
    );
}

#[test]
fn root_mark_attaching_to_nothing_is_reported() {
    let lexed = lexer::lex(
        "// pcm-audit: root(hotpath-alloc) — floats at end of file\n\n\n\n\
         const X: u64 = 1;\n",
    );
    let mut sink = Vec::new();
    let roots = rules::collect_root_marks("crates/a/src/lib.rs", &lexed.comments, &mut sink);
    assert!(sink.is_empty(), "{sink:?}");
    let parsed = parser::parse(&lexed);
    let units = vec![Unit {
        rel: "crates/a/src/lib.rs".to_string(),
        lexed,
        parsed,
        pragmas: Vec::new(),
        roots,
    }];
    let idx = SymbolIndex::build(&units, &[]);
    let findings = graph::check(&units, &idx);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "pragma" && f.message.contains("attaches to no fn")),
        "{findings:#?}"
    );
}

#[test]
fn doc_comments_describing_the_mark_syntax_are_inert() {
    let src = "\
/// Annotate entry points with `// pcm-audit: root(hotpath-alloc) — why`.\n\
/// Suppress a vetted call with `// pcm-audit: allow(panic-reach) — why`.\n\
pub fn document_the_scheme() {}\n";
    let lexed = lexer::lex(src);
    let mut sink = Vec::new();
    let pragmas = rules::collect_pragmas("crates/a/src/lib.rs", &lexed.comments, &mut sink);
    let roots = rules::collect_root_marks("crates/a/src/lib.rs", &lexed.comments, &mut sink);
    assert!(sink.is_empty(), "doc comments produced findings: {sink:?}");
    assert!(pragmas.is_empty());
    assert!(roots.is_empty());
}

#[test]
fn pub_dead_keep_alive_policies() {
    // Four pub fns: an orphan (fires), one kept by its own file's test
    // region, one kept by a doc-comment word in another file, one kept by
    // a bin target in the same crate.
    let units = vec![
        unit(
            "crates/a/src/lib.rs",
            "pub fn orphan() {}\n\
             pub fn test_kept() {}\n\
             pub fn doc_kept() {}\n\
             pub fn bin_kept() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { super::test_kept(); }\n\
             }\n",
        ),
        unit(
            "crates/a/src/other.rs",
            "/// See [`doc_kept`] for the shared contract.\npub(crate) fn shim() {}\n",
        ),
        unit("crates/a/src/bin/tool.rs", "fn main() { bin_kept(); }\n"),
    ];
    let manifests = [manifest("crates/a/Cargo.toml", "a", &[])];
    let findings = graph_findings(units, &manifests);
    let dead: Vec<&str> = findings
        .iter()
        .filter(|f| f.rule == "pub-dead")
        .map(|f| f.message.as_str())
        .collect();
    assert_eq!(dead.len(), 1, "{findings:#?}");
    assert!(dead[0].contains("orphan"));
}

#[test]
fn scan_of_a_throwaway_workspace_matches_the_unit_level_walk() {
    // End-to-end: the same chain as the fixture, driven through the real
    // directory scanner into a ScanReport.
    let root = temp_workspace(
        "endtoend",
        &[
            (
                "Cargo.toml",
                "[package]\nname = \"tmp\"\n[dependencies]\na = { path = \"crates/a\" }\n",
            ),
            (
                "crates/a/src/lib.rs",
                "//! Tiny workspace for the scanner walk.\n\n\
                 // pcm-audit: root(hotpath-alloc) — test hot loop\n\
                 pub fn hot_loop(xs: &mut Vec<u64>) { grow(xs); }\n\n\
                 fn grow(xs: &mut Vec<u64>) { xs.push(1); }\n",
            ),
            (
                "tests/smoke.rs",
                "#[test]\nfn smoke() { hot_loop(&mut Vec::new()); }\n",
            ),
        ],
    );
    let report: pcm_audit::ScanReport = pcm_audit::scan(&root, 1).expect("scan");
    let _ = fs::remove_dir_all(&root);
    let alloc: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "hotpath-alloc")
        .collect();
    assert_eq!(alloc.len(), 1, "{:#?}", report.findings);
    assert_eq!(alloc[0].file, "crates/a/src/lib.rs");
    assert!(report.findings.iter().all(|f| f.rule != "pub-dead"));
}

#[test]
fn unit_level_api_round_trip() {
    // The pieces the scanner composes — lexer, parser, per-file rules,
    // pragmas, baseline, resolver — each hold up on their own.
    let src = "/// Doc.\npub fn visible() {}\n\
               #[cfg(test)]\nmod tests { #[test] fn t() { super::visible(); } }\n";
    let lexed = lexer::lex(src);
    let toks: &[lexer::Tok] = &lexed.tokens;
    assert!(!toks.is_empty());
    let comments: &[lexer::Comment] = &lexed.comments;
    assert_eq!(comments.len(), 1);

    assert!(parser::is_keyword("fn"));
    assert!(!parser::is_keyword("visible"));
    let flags = parser::test_region_flags(&lexed.tokens);
    assert_eq!(flags.len(), lexed.tokens.len());
    assert!(flags.iter().any(|f| *f), "cfg(test) region not marked");
    let parsed = parser::parse(&lexed);
    let items: &[parser::PubItem] = &parsed.pub_items;
    assert!(items.iter().any(|i| i.name == "visible" && !i.in_test));

    assert!(rules::is_lib_code("crates/core/src/lib.rs"));
    assert!(!rules::is_lib_code("crates/core/tests/smoke.rs"));
    assert!(rules::GATE_STAGES.contains(&"== audit =="));

    let out: rules::FileOutput = rules::check_file("crates/x/src/lib.rs", &lexed);
    assert!(out.findings.is_empty() && out.unsafe_inventory.is_empty());

    let mut sink = Vec::new();
    let pragmas: Vec<rules::Pragma> =
        rules::collect_pragmas("crates/x/src/lib.rs", &lexed.comments, &mut sink);
    assert!(pragmas.is_empty() && sink.is_empty());
    assert!(rules::apply_pragmas(Vec::new(), &pragmas).is_empty());
    let marks: Vec<rules::RootMark> =
        rules::collect_root_marks("crates/x/src/lib.rs", &lexed.comments, &mut sink);
    assert!(marks.is_empty() && sink.is_empty());

    let ctx = rules::WorkspaceCtx::default();
    assert!(rules::check_workspace(&ctx).is_empty());

    let entries: Vec<pcm_audit::baseline::BaselineEntry> =
        pcm_audit::baseline::parse("").expect("empty baseline");
    assert!(entries.is_empty());

    let units = vec![unit("crates/a/src/lib.rs", src)];
    let idx = SymbolIndex::build(&units, &[]);
    let nodes: &[FnNode] = &idx.nodes;
    assert!(nodes.iter().any(|n| n.name == "visible"));
    let _resolver = graph::Graph::new(&units, &idx);
}

fn temp_workspace(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("pcm-audit-graph-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for (rel, text) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, text).expect("write");
    }
    root
}
