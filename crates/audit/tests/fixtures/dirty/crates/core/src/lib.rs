//! Fixture library file that must trip every file-scoped rule. It is
//! lexed by the audit tests, never compiled, so it does not need to
//! build against the real workspace.

use std::collections::HashMap;

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn wall_secs() -> u64 {
    let t = std::time::SystemTime::now();
    t.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}

pub fn histogram(xs: &[u64]) -> usize {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.len()
}

pub fn unseeded() -> u64 {
    let mut rng = StdRng::seed_from_u64(0xDEAD_BEEF);
    rng.next_u64()
}

// pcm-audit: allow(made-up-rule) — the rule id does not exist
pub fn first(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}

// pcm-audit: allow(panic-macro)
pub fn boom() -> ! {
    panic!("fixture panic with a reason-less pragma above")
}

pub unsafe fn read_raw(p: *const u8) -> u8 {
    *p
}

#[cfg(feature = "simd")]
#[target_feature(enable = "avx2")]
pub fn escaped_lanes() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

pub fn fan_out(xs: &[u64]) -> u64 {
    std::thread::scope(|s| {
        let h = s.spawn(|| xs.iter().sum::<u64>());
        h.join().unwrap_or(0)
    })
}

pub fn fire_and_forget() {
    std::thread::spawn(|| ());
}

pub struct SharedBank {
    pub state: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
}

pub type GuardedFleet = std::sync::Arc<std::sync::RwLock<u64>>;
