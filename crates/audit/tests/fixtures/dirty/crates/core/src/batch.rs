//! Fixture batch entry point: the lockstep-shaped root fans out over
//! lanes and reaches a `.clone()` two hops down, inside the per-lane
//! payload builder — `hotpath-alloc` must attribute the finding through
//! the `batch_loop -> gather -> lane_payload` chain.

// pcm-audit: root(hotpath-alloc) — fixture lockstep batch driver
pub(crate) fn batch_loop(lanes: &[Vec<u64>], scratch: &mut Vec<u64>) {
    for lane in lanes {
        gather(lane, scratch);
    }
}

fn gather(lane: &Vec<u64>, scratch: &mut Vec<u64>) {
    *scratch = lane_payload(lane);
}

fn lane_payload(lane: &Vec<u64>) -> Vec<u64> {
    lane.clone()
}
