//! Fixture hot path: the annotated root reaches an allocating `.push()`
//! through one call hop, so `hotpath-alloc` must fire exactly once (at
//! the push site inside `stage`). The orphan export at the bottom is the
//! single deliberate `pub-dead` finding.

// pcm-audit: root(hotpath-alloc) — fixture per-write inner loop
pub fn hot_loop(xs: &mut Vec<u64>) {
    stage(xs);
}

fn stage(xs: &mut Vec<u64>) {
    xs.push(1);
}

pub fn forsaken_export() -> u64 {
    7
}
