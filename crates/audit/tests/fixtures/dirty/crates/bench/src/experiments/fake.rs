//! Fixture experiment: registers `fig_fake`, which has no tracked
//! results/fig_fake.json and no EXPERIMENTS.md row — both directions of
//! `artifact-sync` must fire.

pub struct FakeFig;

impl Experiment for FakeFig {
    fn name(&self) -> &'static str {
        "fig_fake"
    }
}
