//! Fixture connection handler: the annotated root reaches a raw slice
//! index two call hops down, so `panic-reach` must fire exactly once (at
//! the index site inside `frame`).

// pcm-audit: root(panic-reach) — fixture wire loop
pub fn serve_stream(bytes: &[u8]) -> u64 {
    decode(bytes)
}

fn decode(b: &[u8]) -> u64 {
    frame(b)
}

fn frame(b: &[u8]) -> u64 {
    b[0] as u64
}
