//! Fixture integration test: names every deliberate export, so the only
//! `pub-dead` finding left in this workspace is the orphan export in
//! `crates/core/src/hot.rs`.

#[test]
fn smoke() {
    let _ = (stamp(), wall_secs(), histogram(&[1]), unseeded());
    let _ = (first(&[2]), boom, read_raw, escaped_lanes);
    let _ = (fan_out(&[3]), fire_and_forget());
    let _bank: SharedBank;
    let _fleet: GuardedFleet;
    let _fig = FakeFig;
    let mut xs = Vec::new();
    hot_loop(&mut xs);
    let _ = serve_stream(&xs);
}
