#!/bin/bash
# Fixture gate script: the static-analysis stage (marker and driver
# invocation both) has been dropped, which must trip the stage rule.
set -u

echo "== fmt check =="
cargo fmt --all --check

echo "== verify =="
cargo run -q --release --bin pcm-verify

echo "== examples =="
cargo run -q --release --example quickstart -- --quick

echo "== bench hotpath =="
cargo run -q --release -p pcm-bench --bin pcm-bench-hotpath -- --smoke

echo "== experiments =="
cargo run -q --release -p pcm-bench --bin pcm-lab -- run-all --out-dir results
