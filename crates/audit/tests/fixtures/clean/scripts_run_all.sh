#!/bin/bash
# Fixture gate script: carries every required stage marker and driver
# invocation, so `gate-stages` must stay silent.
set -u

echo "== fmt check =="
cargo fmt --all --check

echo "== audit =="
cargo run -q --release -p pcm-audit --bin pcm-audit
cargo run -q --release -p pcm-audit --bin pcm-audit -- --json > results/audit.json

cargo build -q --release -p pcm-bench

echo "== verify =="
cargo run -q --release --bin pcm-verify

echo "== examples =="
cargo run -q --release --example quickstart -- --quick

echo "== bench hotpath =="
cargo run -q --release -p pcm-bench --bin pcm-bench-hotpath -- --smoke

echo "== simd =="
cargo test -q --release -p pcm-util --features pcm-util/simd
cargo run -q --release -p pcm-bench --bin pcm-bench-hotpath -- --smoke --out results/simd_smoke_vector.json

echo "== serve =="
cargo run -q --release -p pcm-serve --bin pcm-serve -- --seed 7 --duration 100000

echo "== rivals =="
cargo run -q --release -p pcm-bench --bin pcm-lab -- run rival_lifetime --quick > results/rivals.txt

echo "== experiments =="
cargo run -q --release -p pcm-bench --bin pcm-lab -- run-all --out-dir results
