//! Fixture integration test: `tests/` trees are outside the panic
//! policy, so the bare unwrap() below must not fire — and naming every
//! deliberate export here keeps `pub-dead` silent on this workspace.

#[test]
fn smoke() {
    let v: Vec<u64> = vec![1, 2, 3];
    assert_eq!(v.first().copied().unwrap(), 1);
    let _ = (describe(), raw_mentions(), pragma_lookalike());
    let _ = (thread_prose(), lane_prose(), ownership_prose());
    let _ = (counts(&v), head(&v), head_unchecked(&v), snapshot(&v));
    let _figs = (CleanFig, RivalFig);
    let _lanes = (read_lane, probe);
    let mut acc = 0;
    let mut out = cold_setup();
    hot_loop(&mut acc, &mut out);
    let _ = serve_stream(&[1]);
}
