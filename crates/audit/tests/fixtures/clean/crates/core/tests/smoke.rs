//! Fixture integration test: `tests/` trees are outside the panic
//! policy, so the bare unwrap() below must not fire.

#[test]
fn smoke() {
    let v: Vec<u64> = vec![1, 2, 3];
    assert_eq!(v.first().copied().unwrap(), 1);
}
