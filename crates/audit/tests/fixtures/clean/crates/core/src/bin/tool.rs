//! Fixture binary: `src/bin/` targets are outside the panic policy, so
//! the bare unwrap() below must not fire.

fn main() {
    let arg = std::env::args().nth(1).unwrap();
    println!("{arg}");
}
