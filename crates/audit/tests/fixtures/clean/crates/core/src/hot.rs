//! Fixture near-miss hot path: the annotated root's reachable chain is
//! allocation-free, the allocating helper sits outside the root's
//! reachable set, and the vetted push carries a justified pragma — a
//! correct `hotpath-alloc` walk reports nothing here.

// pcm-audit: root(hotpath-alloc) — fixture per-write inner loop; the reachable chain stays allocation-free
pub fn hot_loop(acc: &mut u64, out: &mut Vec<u64>) {
    stage(acc);
    hot_record(out);
}

fn stage(acc: &mut u64) {
    *acc += 1;
}

fn hot_record(out: &mut Vec<u64>) {
    // pcm-audit: allow(hotpath-alloc) — stays within the caller's reservation
    out.push(1);
}

/// Allocates freely, but no root reaches it.
pub fn cold_setup() -> Vec<u64> {
    let mut xs = Vec::new();
    xs.push(1);
    xs
}
