//! Fixture near-miss file: every trigger phrase below sits somewhere the
//! rules must NOT look — string literals, raw strings, comments, cfg(test)
//! regions, or under a justified pragma. A correct audit reports nothing.

use std::collections::BTreeMap;

/// Prose mention of HashMap and Instant::now — comments are not tokens.
pub fn describe() -> &'static str {
    "HashMap, Instant::now(), and panic! inside a plain string literal"
}

pub fn raw_mentions() -> &'static str {
    r#"SystemTime, seed_from_u64 and .unwrap() inside a raw "string""#
}

pub fn pragma_lookalike() -> &'static str {
    "pcm-audit: allow(not-a-rule) — pragma text in a string is not a pragma"
}

pub fn thread_prose() -> &'static str {
    "thread::spawn and thread::scope in a string are not thread creation"
}

pub fn counts(xs: &[u64]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0u64) += 1;
    }
    m
}

pub fn head(xs: &[u64]) -> u64 {
    xs.first().copied().expect("expect() with a message is sanctioned")
}

// pcm-audit: allow(panic-unwrap) — fixture exercises a justified pragma
pub fn head_unchecked(xs: &[u64]) -> u64 { xs.first().copied().unwrap() }

pub fn lane_prose() -> &'static str {
    "unsafe, target_feature and cfg(feature = \"simd\") in a string are prose"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_and_panic() {
        Some(1u32).unwrap();
        panic!("panics are fine in cfg(test) regions");
    }

    #[test]
    fn test_code_may_spawn_threads() {
        std::thread::spawn(|| ()).join().unwrap();
    }

    #[test]
    fn test_code_may_gate_on_simd() {
        assert!(cfg!(feature = "simd") || !cfg!(feature = "simd"));
    }
}

pub fn ownership_prose() -> &'static str {
    "Arc<Mutex<BankCtl>> in a string literal is prose, not shared state"
}

/// Read-only shared snapshots are not lock-wrapped bank state.
pub fn snapshot(xs: &[u64]) -> std::sync::Arc<Vec<u64>> {
    std::sync::Arc::new(xs.to_vec())
}
