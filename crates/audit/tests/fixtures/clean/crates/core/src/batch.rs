//! Fixture batch near-miss: the lockstep-shaped root reuses caller
//! scratch across every lane, the one per-wave push carries a justified
//! pragma, and the allocating scratch builder sits outside the root's
//! reachable set — a correct `hotpath-alloc` walk reports nothing.

// pcm-audit: root(hotpath-alloc) — fixture lockstep batch driver; lanes reuse caller-owned scratch
pub(crate) fn batch_loop(lanes: &[u64], scratch: &mut [u64], out: &mut Vec<u64>) {
    for (i, &lane) in lanes.iter().enumerate() {
        gather(lane, &mut scratch[i]);
    }
    // pcm-audit: allow(hotpath-alloc) — one push per wave, amortized over the whole lane set
    out.push(scratch.iter().copied().sum());
}

fn gather(lane: u64, slot: &mut u64) {
    *slot = lane.rotate_left(1);
}

/// Builds the per-wave lane scratch once, outside any hot root.
pub(crate) fn lane_scratch(lanes: usize) -> Vec<u64> {
    vec![0; lanes]
}
