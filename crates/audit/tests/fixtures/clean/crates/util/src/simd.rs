//! Fixture twin of the real `crates/util/src/simd.rs`: the ONE file where
//! the `simd-confine` rule permits lane machinery. Everything below must
//! produce no finding here, and the single unsafe site must land in the
//! inventory because it carries an adjacent SAFETY comment.

#[cfg(feature = "simd")]
#[target_feature(enable = "avx2")]
pub fn read_lane(p: *const u8) -> u8 {
    // SAFETY: fixture callers pass a valid pointer; this site exercises
    // the unsafe inventory path (SAFETY comment present, no finding).
    unsafe { *p }
}

#[cfg(feature = "simd")]
pub fn probe() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}
