//! Fixture experiment: registers `fig_clean`, which is fully synced —
//! tracked results and an EXPERIMENTS.md row — so `artifact-sync` must
//! stay silent.

pub struct CleanFig;

impl Experiment for CleanFig {
    fn name(&self) -> &'static str {
        "fig_clean"
    }
}

/// Second synced experiment: the rival-stack grid, mirroring the real
/// registry's `rival_lifetime` entry so both sync directions cover more
/// than one name.
pub struct RivalFig;

impl Experiment for RivalFig {
    fn name(&self) -> &'static str {
        "rival_clean"
    }
}
