//! Fixture experiment: registers `fig_clean`, which is fully synced —
//! tracked results and an EXPERIMENTS.md row — so `artifact-sync` must
//! stay silent.

pub struct CleanFig;

impl Experiment for CleanFig {
    fn name(&self) -> &'static str {
        "fig_clean"
    }
}
