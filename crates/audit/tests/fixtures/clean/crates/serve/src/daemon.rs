//! Fixture near-miss connection handler: every access on the reachable
//! chain degrades gracefully (`first` + `unwrap_or`, no raw indexing or
//! expect), so `panic-reach` reports nothing here.

// pcm-audit: root(panic-reach) — fixture wire loop must answer garbage with error frames
pub fn serve_stream(bytes: &[u8]) -> u64 {
    decode(bytes)
}

fn decode(b: &[u8]) -> u64 {
    frame(b)
}

fn frame(b: &[u8]) -> u64 {
    b.first().copied().unwrap_or(0) as u64
}
