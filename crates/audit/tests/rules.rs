//! Fixture-pair coverage: the `dirty` mini-workspace must trip every rule
//! id in the table, the `clean` near-miss workspace must report nothing,
//! and the rendered report must be byte-identical across runs and `--jobs`.
//!
//! Fixture sources are lexed by the scanner, never compiled — they live
//! under `tests/fixtures/`, which is not a cargo target directory and is
//! skipped by the real-workspace walk.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn rendered(root: &Path, jobs: usize) -> String {
    let report = pcm_audit::scan(root, jobs).expect("fixture scan");
    let applied = pcm_audit::baseline::apply(report.findings.clone(), &[]);
    pcm_audit::render(&report, &applied)
}

#[test]
fn dirty_fixture_trips_every_rule() {
    let report = pcm_audit::scan(&fixture("dirty"), 1).expect("fixture scan");
    let fired: BTreeSet<&str> = report.findings.iter().map(|f| f.rule).collect();
    for rule in pcm_audit::RULES {
        assert!(
            fired.contains(rule.id),
            "rule `{}` did not fire on the dirty fixture; findings:\n{:#?}",
            rule.id,
            report.findings
        );
    }
}

#[test]
fn dirty_fixture_specific_sites() {
    let report = pcm_audit::scan(&fixture("dirty"), 1).expect("fixture scan");
    let has = |rule: &str, file: &str, needle: &str| {
        report
            .findings
            .iter()
            .any(|f| f.rule == rule && f.file == file && f.message.contains(needle))
    };
    let lib = "crates/core/src/lib.rs";
    assert!(has("wallclock", lib, "Instant::now"));
    assert!(has("wallclock", lib, "SystemTime"));
    assert!(has("map-order", lib, "HashMap"));
    assert!(has("rng-source", lib, "seed_from_u64"));
    assert!(has("thread-spawn", lib, "`thread::scope`"));
    assert!(has("thread-spawn", lib, "`thread::spawn`"));
    assert!(has("pragma", lib, "made-up-rule"));
    assert!(has("pragma", lib, "needs a reason"));
    // Malformed pragmas suppress nothing: the annotated sites still fire.
    assert!(has("panic-unwrap", lib, "bare unwrap()"));
    assert!(has("panic-macro", lib, "`panic!`"));
    assert!(has("unsafe-block", lib, "SAFETY"));
    assert!(has("simd-confine", lib, "`unsafe`"));
    assert!(has("simd-confine", lib, "`target_feature`"));
    assert!(has("simd-confine", lib, "CPU intrinsics"));
    assert!(has("simd-confine", lib, "`cfg(feature = \"simd\")`"));
    assert!(has("serve-ownership", lib, "`Arc<Mutex>`"));
    assert!(has("serve-ownership", lib, "`Arc<RwLock>`"));
    assert!(has("registry-dep", "Cargo.toml", "`serde`"));
    assert!(has("registry-dep", "Cargo.toml", "`rand`"));
    assert!(has("gate-stages", "scripts_run_all.sh", "== audit =="));
    assert!(has("gate-stages", "scripts_run_all.sh", "pcm-audit"));
    // artifact-sync, all four directions.
    assert!(has("artifact-sync", "results/fig_fake.json", "no tracked"));
    assert!(has(
        "artifact-sync",
        "EXPERIMENTS.md",
        "no EXPERIMENTS.md row"
    ));
    assert!(has(
        "artifact-sync",
        "results/stray_artifact.json",
        "matches no"
    ));
    assert!(has("artifact-sync", "EXPERIMENTS.md", "`ghost_study`"));
}

#[test]
fn clean_fixture_reports_nothing() {
    let report = pcm_audit::scan(&fixture("clean"), 1).expect("fixture scan");
    assert!(
        report.findings.is_empty(),
        "near-miss fixture produced findings:\n{:#?}",
        report.findings
    );
    // The SAFETY-commented unsafe site lands in the inventory, not a finding.
    assert_eq!(
        report.unsafe_inventory.len(),
        1,
        "inventory: {:?}",
        report.unsafe_inventory
    );
    assert!(report.unsafe_inventory[0].starts_with("crates/util/src/simd.rs:"));
}

#[test]
fn reports_are_byte_identical_across_runs_and_jobs() {
    for root in [fixture("dirty"), fixture("clean")] {
        let baseline_run = rendered(&root, 1);
        assert_eq!(baseline_run, rendered(&root, 1), "{}", root.display());
        for jobs in [2, 4, 7] {
            assert_eq!(
                baseline_run,
                rendered(&root, jobs),
                "{} differs at --jobs {jobs}",
                root.display()
            );
        }
    }
}
