//! Self-check: `pcm-audit` run over the real workspace with the
//! checked-in `audit-baseline.toml` must come back clean, and the report
//! must not depend on the worker count. This is the library-level twin of
//! the `== audit ==` gate stage in `scripts_run_all.sh`.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn real_workspace_is_clean_under_checked_in_baseline() {
    let root = workspace_root();
    let report = pcm_audit::scan(&root, 2).expect("workspace scan");
    let text = std::fs::read_to_string(root.join("audit-baseline.toml"))
        .expect("checked-in audit-baseline.toml");
    let entries = pcm_audit::baseline::parse(&text).expect("baseline parses");
    let applied = pcm_audit::baseline::apply(report.findings.clone(), &entries);
    assert!(
        applied.visible.is_empty(),
        "unbaselined findings:\n{}",
        applied
            .visible
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        applied.exceeded.is_empty(),
        "baseline groups over their count:\n{:?}",
        applied.exceeded
    );
    // Unsafe is confined to the dual scalar/vector kernel file by policy
    // (DESIGN.md §11, rule `simd-confine`): every inventoried site must
    // live there, and each must carry its SAFETY comment (a bare site
    // would have surfaced as an `unsafe-block` finding above).
    for site in &report.unsafe_inventory {
        assert!(
            site.starts_with("crates/util/src/simd.rs:"),
            "unsafe site outside the confinement file: {site}"
        );
    }
}

#[test]
fn workspace_report_is_byte_identical_across_jobs() {
    let root = workspace_root();
    let mut renders = Vec::new();
    for jobs in [1usize, 4] {
        let report = pcm_audit::scan(&root, jobs).expect("workspace scan");
        let applied = pcm_audit::baseline::apply(report.findings.clone(), &[]);
        renders.push(pcm_audit::render(&report, &applied));
    }
    assert_eq!(renders[0], renders[1], "report depends on --jobs");
}
