//! Vendored `serde` facade for the offline build.
//!
//! Re-exports no-op [`Serialize`]/[`Deserialize`] derive macros and
//! declares the marker traits under the usual names, so the rest of the
//! workspace keeps its `#[derive(Serialize, Deserialize)]` attributes
//! unchanged. No in-tree code serializes anything; swapping the workspace
//! dependency back to crates.io `serde` restores full functionality
//! without touching any other file.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no-op in the offline build).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no-op in the offline build).
pub trait Deserialize<'de>: Sized {}
