//! Property tests: the inter-line remapping engines stay bijective — and
//! keep data reachable through their physical copies — across *arbitrary*
//! rotation sequences, not just the fixed walks in the unit tests.

use proptest::prelude::*;
use std::collections::HashSet;

use pcm_wear::{SecurityRefresh, StartGap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Start-Gap: after any sequence of write bursts (gap moves landing at
    /// arbitrary points, wraps included), the logical→physical map is a
    /// bijection that avoids the gap, and shadow contents moved by each
    /// `GapMove` are still found exactly where `map` points.
    #[test]
    fn start_gap_bijective_under_arbitrary_writes(
        n in 2u64..40,
        psi in 1u32..8,
        bursts in prop::collection::vec(0usize..25, 1..40),
    ) {
        let mut sg = StartGap::new(n, psi);
        let mut phys: Vec<Option<u64>> = (0..n).map(Some).chain([None]).collect();
        for burst in bursts {
            for _ in 0..burst {
                if let Some(mv) = sg.on_write() {
                    let moved = phys[mv.from as usize].take();
                    prop_assert!(moved.is_some(), "gap move copied from the gap itself");
                    phys[mv.to as usize] = moved;
                }
            }
            let mut seen = HashSet::new();
            for l in 0..n {
                let p = sg.map(l);
                prop_assert!(p < sg.physical_lines());
                prop_assert!(p != sg.gap(), "logical {} mapped onto the gap", l);
                prop_assert!(seen.insert(p), "physical {} mapped twice", p);
                prop_assert_eq!(phys[p as usize], Some(l));
            }
            prop_assert!(phys[sg.gap() as usize].is_none(), "gap slot holds data");
        }
    }

    /// Start-Gap: one full rotation — n × (n + 1) gap moves — returns the
    /// engine to the identity mapping with the gap back on top.
    #[test]
    fn start_gap_full_rotation_is_identity(n in 2u64..24, psi in 1u32..5) {
        let mut sg = StartGap::new(n, psi);
        for _ in 0..n * (n + 1) {
            sg.move_gap();
        }
        prop_assert_eq!(sg.gap(), n);
        prop_assert_eq!(sg.start(), 0);
        for l in 0..n {
            prop_assert_eq!(sg.map(l), l);
        }
    }

    /// Security Refresh: across arbitrary write bursts and key epochs the
    /// XOR mapping stays a bijection, and contents exchanged by each
    /// returned `Swap` are still found where `map` points.
    #[test]
    fn security_refresh_bijective_under_arbitrary_writes(
        npow in 1u32..6,
        psi in 1u32..6,
        seed in any::<u64>(),
        bursts in prop::collection::vec(0usize..30, 1..40),
    ) {
        let n = 1u64 << npow;
        let mut sr = SecurityRefresh::new(n, psi, seed);
        // map starts as identity (key 0, pointer 0): slots[p] = logical p.
        let mut slots: Vec<u64> = (0..n).collect();
        for burst in bursts {
            for _ in 0..burst {
                if let Some(swap) = sr.on_write() {
                    slots.swap(swap.a as usize, swap.b as usize);
                }
            }
            let mut seen = HashSet::new();
            for l in 0..n {
                let p = sr.map(l);
                prop_assert!(p < n);
                prop_assert!(seen.insert(p), "slot {} mapped twice", p);
                prop_assert_eq!(slots[p as usize], l, "logical {} lost in epoch {}", l, sr.epoch());
            }
        }
    }

    /// Both engines are deterministic: identical construction and write
    /// sequences yield identical mappings at every observation point.
    #[test]
    fn remapping_is_deterministic(
        npow in 1u32..6,
        psi in 1u32..6,
        seed in any::<u64>(),
        writes in 0usize..600,
    ) {
        let n = 1u64 << npow;
        let (mut a, mut b) = (StartGap::new(n, psi), StartGap::new(n, psi));
        let (mut x, mut y) =
            (SecurityRefresh::new(n, psi, seed), SecurityRefresh::new(n, psi, seed));
        for _ in 0..writes {
            prop_assert_eq!(a.on_write(), b.on_write());
            prop_assert_eq!(x.on_write(), y.on_write());
        }
        for l in 0..n {
            prop_assert_eq!(a.map(l), b.map(l));
            prop_assert_eq!(x.map(l), y.map(l));
        }
    }
}
