//! Property tests: the inter-line remapping engines stay bijective — and
//! keep data reachable through their physical copies — across *arbitrary*
//! rotation sequences, not just the fixed walks in the unit tests.

use proptest::prelude::*;
use std::collections::HashSet;

use pcm_wear::{SecurityRefresh, StartGap, WearEvent, WearScheme, Wolfram};

/// Drives any `WearScheme` through the trait the controller uses: shadow
/// physical contents follow each emitted event, and after every burst the
/// map must be a bijection with every logical line found where it points.
fn check_scheme_bijective(scheme: &mut dyn WearScheme, bursts: &[usize]) -> Result<(), String> {
    let n = scheme.logical_lines();
    let phys = scheme.physical_lines();
    let mut slots: Vec<Option<u64>> = (0..phys).map(|p| (p < n).then_some(p)).collect();
    let mut write = 0u64;
    for &burst in bursts {
        for _ in 0..burst {
            let logical = write % n;
            write += 1;
            match scheme.on_write(logical) {
                Some(WearEvent::Move { to }) => {
                    // The logical line now mapped to `to` (if any) is
                    // rewritten there from its old slot.
                    let mover = (0..n).find(|&l| scheme.map(l) == to);
                    if let Some(l) = mover {
                        let from = slots
                            .iter()
                            .position(|&s| s == Some(l))
                            .ok_or_else(|| format!("logical {l} lost"))?;
                        slots[from] = None;
                        slots[to as usize] = Some(l);
                    }
                }
                Some(WearEvent::Swap { a, b }) => slots.swap(a as usize, b as usize),
                None => {}
            }
        }
        let mut seen = HashSet::new();
        for l in 0..n {
            let p = scheme.map(l);
            prop_assert!(p < phys, "{}: slot {} out of range", scheme.name(), p);
            prop_assert!(seen.insert(p), "{}: slot {} mapped twice", scheme.name(), p);
            prop_assert_eq!(
                slots[p as usize],
                Some(l),
                "{}: logical {} not where map points",
                scheme.name(),
                l
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Start-Gap: after any sequence of write bursts (gap moves landing at
    /// arbitrary points, wraps included), the logical→physical map is a
    /// bijection that avoids the gap, and shadow contents moved by each
    /// `GapMove` are still found exactly where `map` points.
    #[test]
    fn start_gap_bijective_under_arbitrary_writes(
        n in 2u64..40,
        psi in 1u32..8,
        bursts in prop::collection::vec(0usize..25, 1..40),
    ) {
        let mut sg = StartGap::new(n, psi);
        let mut phys: Vec<Option<u64>> = (0..n).map(Some).chain([None]).collect();
        for burst in bursts {
            for _ in 0..burst {
                if let Some(mv) = sg.on_write() {
                    let moved = phys[mv.from as usize].take();
                    prop_assert!(moved.is_some(), "gap move copied from the gap itself");
                    phys[mv.to as usize] = moved;
                }
            }
            let mut seen = HashSet::new();
            for l in 0..n {
                let p = sg.map(l);
                prop_assert!(p < sg.physical_lines());
                prop_assert!(p != sg.gap(), "logical {} mapped onto the gap", l);
                prop_assert!(seen.insert(p), "physical {} mapped twice", p);
                prop_assert_eq!(phys[p as usize], Some(l));
            }
            prop_assert!(phys[sg.gap() as usize].is_none(), "gap slot holds data");
        }
    }

    /// Start-Gap: one full rotation — n × (n + 1) gap moves — returns the
    /// engine to the identity mapping with the gap back on top.
    #[test]
    fn start_gap_full_rotation_is_identity(n in 2u64..24, psi in 1u32..5) {
        let mut sg = StartGap::new(n, psi);
        for _ in 0..n * (n + 1) {
            sg.move_gap();
        }
        prop_assert_eq!(sg.gap(), n);
        prop_assert_eq!(sg.start(), 0);
        for l in 0..n {
            prop_assert_eq!(sg.map(l), l);
        }
    }

    /// Security Refresh: across arbitrary write bursts and key epochs the
    /// XOR mapping stays a bijection, and contents exchanged by each
    /// returned `Swap` are still found where `map` points.
    #[test]
    fn security_refresh_bijective_under_arbitrary_writes(
        npow in 1u32..6,
        psi in 1u32..6,
        seed in any::<u64>(),
        bursts in prop::collection::vec(0usize..30, 1..40),
    ) {
        let n = 1u64 << npow;
        let mut sr = SecurityRefresh::new(n, psi, seed);
        // map starts as identity (key 0, pointer 0): slots[p] = logical p.
        let mut slots: Vec<u64> = (0..n).collect();
        for burst in bursts {
            for _ in 0..burst {
                if let Some(swap) = sr.on_write() {
                    slots.swap(swap.a as usize, swap.b as usize);
                }
            }
            let mut seen = HashSet::new();
            for l in 0..n {
                let p = sr.map(l);
                prop_assert!(p < n);
                prop_assert!(seen.insert(p), "slot {} mapped twice", p);
                prop_assert_eq!(slots[p as usize], l, "logical {} lost in epoch {}", l, sr.epoch());
            }
        }
    }

    /// Both engines are deterministic: identical construction and write
    /// sequences yield identical mappings at every observation point.
    #[test]
    fn remapping_is_deterministic(
        npow in 1u32..6,
        psi in 1u32..6,
        seed in any::<u64>(),
        writes in 0usize..600,
    ) {
        let n = 1u64 << npow;
        let (mut a, mut b) = (StartGap::new(n, psi), StartGap::new(n, psi));
        let (mut x, mut y) =
            (SecurityRefresh::new(n, psi, seed), SecurityRefresh::new(n, psi, seed));
        for _ in 0..writes {
            prop_assert_eq!(a.on_write(), b.on_write());
            prop_assert_eq!(x.on_write(), y.on_write());
        }
        for l in 0..n {
            prop_assert_eq!(a.map(l), b.map(l));
            prop_assert_eq!(x.map(l), y.map(l));
        }
    }

    /// Every `WearScheme` — Start-Gap, Security Refresh, WoLFRaM — keeps a
    /// bijective remap with reachable data under arbitrary write bursts,
    /// exercised purely through the trait the controller uses.
    #[test]
    fn every_wear_scheme_bijective_through_the_trait(
        npow in 1u32..6,
        psi in 1u32..6,
        seed in any::<u64>(),
        bursts in prop::collection::vec(0usize..30, 1..30),
    ) {
        let n = 1u64 << npow;
        let schemes: Vec<Box<dyn WearScheme>> = vec![
            Box::new(StartGap::new(n, psi)),
            Box::new(SecurityRefresh::new(n, psi, seed)),
            Box::new(Wolfram::new(n, psi, seed)),
        ];
        for mut s in schemes {
            check_scheme_bijective(s.as_mut(), &bursts)?;
        }
    }

    /// WoLFRaM keeps the bijection through fault retirements: retire a
    /// mapped slot mid-sequence and the hosted line must land on a spare,
    /// with the dead slot never reappearing in the map.
    #[test]
    fn wolfram_bijective_across_retirements(
        n in 2u64..40,
        psi in 1u32..6,
        seed in any::<u64>(),
        victims in prop::collection::vec(0u64..40, 0..3),
        writes in 1usize..200,
    ) {
        let mut w = Wolfram::new(n, psi, seed);
        let mut dead = Vec::new();
        for v in victims {
            let phys = w.map(v % n);
            if let Some(spare) = w.retire_line(phys) {
                prop_assert_ne!(spare, phys);
                dead.push(phys);
            }
        }
        for i in 0..writes as u64 {
            w.on_write(i % n);
            let mut seen = HashSet::new();
            for l in 0..n {
                let p = w.map(l);
                prop_assert!(p < w.physical_lines());
                prop_assert!(seen.insert(p), "slot {} mapped twice", p);
                prop_assert!(!dead.contains(&p), "retired slot {} reused", p);
            }
        }
    }
}
