//! Wear-leveling for PCM main memory.
//!
//! Two levels, matching the paper's stack (§II-C, §III-A.2):
//!
//! * [`StartGap`] — **inter-line** wear-leveling (Qureshi et al., MICRO
//!   2009): one spare "gap" line per region plus `Start`/`Gap` registers;
//!   every ψ writes the gap migrates one slot, slowly rotating the
//!   logical-to-physical line mapping so hot lines spread their writes over
//!   all physical lines. The paper's baseline (and every evaluated system)
//!   uses Start-Gap.
//! * [`IntraLineLeveler`] — **intra-line** wear-leveling, the paper's own
//!   addition (§III-A.2): a single 16-bit counter per *bank* (not per
//!   line); each time it saturates, the compression-window start rotates by
//!   one byte, spreading the compressed payload's bit flips over the whole
//!   64-byte line without per-line counters.
//!
//! Every inter-line engine implements the [`WearScheme`] trait (remap +
//! write events + optional fault redirect), so the controller composes
//! with [`StartGap`], [`SecurityRefresh`], or [`Wolfram`]
//! interchangeably — see `scheme`.
//!
//! # Examples
//!
//! ```
//! use pcm_wear::StartGap;
//!
//! let mut sg = StartGap::new(8, 4); // 8 logical lines, gap moves every 4 writes
//! let before = sg.map(3);
//! for _ in 0..64 { sg.on_write(); }
//! // After enough gap movements the mapping has rotated.
//! assert_ne!(sg.map(3), before);
//! ```

pub(crate) mod intra_line;
pub mod scheme;
pub(crate) mod security_refresh;
pub(crate) mod start_gap;
pub mod wolfram;

pub use intra_line::IntraLineLeveler;
pub use scheme::{WearEvent, WearScheme};
pub use security_refresh::SecurityRefresh;
pub use start_gap::{GapMove, StartGap};
pub use wolfram::Wolfram;
