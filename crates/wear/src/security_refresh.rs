//! Security-Refresh-style randomized inter-line wear-leveling
//! (Seong et al., ISCA 2010) — an alternative to [`StartGap`].
//!
//! Start-Gap rotates the address space deterministically, which an
//! adversary (or an unlucky stride) can track. Security Refresh instead
//! XORs logical addresses with a random key, and periodically migrates to
//! a fresh key: a *refresh pointer* walks the region, and each step swaps
//! the pair of lines that exchange places under the key change (lines `l`
//! and `l ^ (k_cur ^ k_next)` swap physical slots). During an epoch, lines
//! already passed by the pointer map with the new key, the rest with the
//! old one.
//!
//! Provided as a pluggable substrate; the paper's evaluated systems use
//! Start-Gap, and the `ablation_interline_wl` bench compares the two on
//! wear-spread uniformity.
//!
//! [`StartGap`]: crate::StartGap

use pcm_util::child_seed;
use serde::{Deserialize, Serialize};

/// A pair of physical slots whose contents swap during one refresh step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Swap {
    /// First physical slot.
    pub a: u64,
    /// Second physical slot (equal to `a` when the line is a fixed point
    /// of the key change — no data actually moves).
    pub b: u64,
}

/// The Security-Refresh remapping engine for a region of `n` lines
/// (`n` a power of two; the XOR keys are drawn from `0..n`).
///
/// # Examples
///
/// ```
/// use pcm_wear::SecurityRefresh;
///
/// let mut sr = SecurityRefresh::new(64, 4, 7);
/// let before = sr.map(10);
/// for _ in 0..64 * 8 { sr.on_write(); }
/// // After full epochs the mapping has changed key.
/// let _after = sr.map(10);
/// assert!(before < 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecurityRefresh {
    n: u64,
    key_cur: u64,
    key_next: u64,
    pointer: u64,
    psi: u32,
    writes_since_step: u32,
    epoch: u64,
    seed: u64,
}

impl SecurityRefresh {
    /// Creates an engine over `n` lines, advancing the refresh pointer
    /// every `psi` writes.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two ≥ 2, or if `psi == 0`.
    pub fn new(n: u64, psi: u32, seed: u64) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "region must be a power of two, got {n}"
        );
        assert!(psi > 0, "refresh period must be positive");
        let key_cur = 0;
        let key_next = child_seed(seed, 1) % n;
        SecurityRefresh {
            n,
            key_cur,
            key_next,
            pointer: 0,
            psi,
            writes_since_step: 0,
            epoch: 0,
            seed,
        }
    }

    /// Number of lines in the region.
    pub fn lines(&self) -> u64 {
        self.n
    }

    /// Completed key epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current refresh-pointer position within the epoch.
    pub fn pointer(&self) -> u64 {
        self.pointer
    }

    /// Maps a logical line to its current physical line.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= n`.
    pub fn map(&self, logical: u64) -> u64 {
        assert!(logical < self.n, "logical line {logical} out of range");
        // A line has been refreshed this epoch when the *smaller* member
        // of its swap pair is below the pointer (pairs move together).
        let partner = logical ^ self.key_cur ^ self.key_next;
        let refreshed = logical.min(partner) < self.pointer;
        logical
            ^ if refreshed {
                self.key_next
            } else {
                self.key_cur
            }
    }

    /// Records one write; every ψ-th write advances the refresh pointer
    /// and returns the physical swap the controller performs.
    pub fn on_write(&mut self) -> Option<Swap> {
        self.writes_since_step += 1;
        if self.writes_since_step < self.psi {
            return None;
        }
        self.writes_since_step = 0;
        Some(self.step())
    }

    /// Advances the refresh pointer one step immediately.
    pub fn step(&mut self) -> Swap {
        let delta = self.key_cur ^ self.key_next;
        // Find the next unprocessed pair leader at or after the pointer.
        let mut l = self.pointer;
        while l < self.n && (l ^ delta) < l {
            l += 1; // the pair was already swapped when its leader passed
        }
        let swap = if l < self.n {
            Swap {
                a: l ^ self.key_cur,
                b: l ^ self.key_next,
            }
        } else {
            Swap { a: 0, b: 0 } // epoch tail: nothing left to move
        };
        self.pointer = l + 1;
        if self.pointer >= self.n {
            // Epoch complete: adopt the new key, draw the next one.
            self.key_cur = self.key_next;
            self.epoch += 1;
            self.key_next = child_seed(self.seed, self.epoch + 1) % self.n;
            self.pointer = 0;
        }
        swap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_bijection(sr: &SecurityRefresh) {
        let mut seen = HashSet::new();
        for l in 0..sr.lines() {
            let p = sr.map(l);
            assert!(p < sr.lines());
            assert!(seen.insert(p), "slot {p} mapped twice");
        }
    }

    #[test]
    fn mapping_is_always_a_bijection() {
        let mut sr = SecurityRefresh::new(32, 1, 5);
        for _ in 0..400 {
            check_bijection(&sr);
            sr.on_write();
        }
    }

    #[test]
    fn swaps_track_the_mapping() {
        // Maintain shadow contents; after every swap the invariant
        // phys[map(l)] == l must hold.
        let n = 16u64;
        let mut sr = SecurityRefresh::new(n, 1, 9);
        let mut phys: Vec<u64> = (0..n).map(|l| sr.map(l)).collect();
        // phys[p] = logical stored there; build inverse of initial map.
        let mut slots = vec![0u64; n as usize];
        for (l, &p) in phys.iter().enumerate() {
            slots[p as usize] = l as u64;
        }
        for step in 0..600 {
            if let Some(swap) = sr.on_write() {
                slots.swap(swap.a as usize, swap.b as usize);
            }
            for l in 0..n {
                assert_eq!(
                    slots[sr.map(l) as usize],
                    l,
                    "step {step}: logical {l} lost (epoch {})",
                    sr.epoch()
                );
            }
        }
        phys.clear();
    }

    #[test]
    fn epochs_rotate_keys() {
        let mut sr = SecurityRefresh::new(8, 1, 3);
        let initial: Vec<u64> = (0..8).map(|l| sr.map(l)).collect();
        // Run several epochs.
        for _ in 0..8 * 5 {
            sr.step();
        }
        assert!(sr.epoch() >= 4);
        let later: Vec<u64> = (0..8).map(|l| sr.map(l)).collect();
        assert_ne!(initial, later, "mapping must change across epochs");
    }

    #[test]
    fn lines_visit_many_slots_over_time() {
        let n = 16u64;
        let mut sr = SecurityRefresh::new(n, 1, 11);
        let mut visited: Vec<HashSet<u64>> = (0..n).map(|_| HashSet::new()).collect();
        for _ in 0..(n * 40) {
            for l in 0..n {
                visited[l as usize].insert(sr.map(l));
            }
            sr.step();
        }
        for (l, v) in visited.iter().enumerate() {
            assert!(
                v.len() >= (n as usize) / 2,
                "line {l} visited only {} slots",
                v.len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        SecurityRefresh::new(12, 1, 0);
    }
}
