//! Start-Gap inter-line wear-leveling (Qureshi et al., MICRO 2009).

use serde::{Deserialize, Serialize};

/// A gap movement: the controller copies the content of physical line
/// `from` into physical line `to` (the old gap), making `from` the new gap.
///
/// This copy is a *real write* to `to` and must be charged to that line's
/// wear — the lifetime simulator does so.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapMove {
    /// Physical line whose content moves.
    pub from: u64,
    /// Physical line that receives it (the previous gap).
    pub to: u64,
}

/// The Start-Gap address-rotation engine for one region of `n` logical
/// lines over `n + 1` physical lines.
///
/// Logical line `l` maps to physical line `(l + start) mod n`, skipping the
/// gap: positions at or above the gap shift up by one. Every `psi` writes
/// the gap moves down one slot; when it wraps, `start` advances, so after
/// `n × (n + 1) × psi` writes every logical line has visited every physical
/// slot.
///
/// # Examples
///
/// ```
/// use pcm_wear::StartGap;
///
/// let mut sg = StartGap::new(4, 1);
/// // All four logical lines map to distinct physical lines, none to the gap.
/// let mut seen: Vec<u64> = (0..4).map(|l| sg.map(l)).collect();
/// seen.sort_unstable();
/// seen.dedup();
/// assert_eq!(seen.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StartGap {
    n: u64,
    start: u64,
    gap: u64,
    psi: u32,
    writes_since_move: u32,
}

impl StartGap {
    /// Creates a Start-Gap engine for `n` logical lines with gap period
    /// `psi` (the paper's baseline uses ψ = 100).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `psi == 0`.
    pub fn new(n: u64, psi: u32) -> Self {
        assert!(n >= 2, "need at least two lines, got {n}");
        assert!(psi > 0, "gap period must be positive");
        StartGap {
            n,
            start: 0,
            gap: n,
            psi,
            writes_since_move: 0,
        }
    }

    /// Number of logical lines.
    pub fn logical_lines(&self) -> u64 {
        self.n
    }

    /// Number of physical lines (one extra for the gap).
    pub fn physical_lines(&self) -> u64 {
        self.n + 1
    }

    /// Current physical position of the gap.
    pub fn gap(&self) -> u64 {
        self.gap
    }

    /// Current start register.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Maps a logical line to its current physical line.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= n`.
    pub fn map(&self, logical: u64) -> u64 {
        assert!(logical < self.n, "logical line {logical} out of range");
        let pa = (logical + self.start) % self.n;
        if pa >= self.gap {
            pa + 1
        } else {
            pa
        }
    }

    /// Records one demand write. Every ψ-th write moves the gap and returns
    /// the copy the controller performs.
    pub fn on_write(&mut self) -> Option<GapMove> {
        self.writes_since_move += 1;
        if self.writes_since_move < self.psi {
            return None;
        }
        self.writes_since_move = 0;
        Some(self.move_gap())
    }

    /// Moves the gap one slot immediately (exposed for tests/campaigns).
    pub fn move_gap(&mut self) -> GapMove {
        if self.gap == 0 {
            // Wrap: the line at the top physical slot moves into the
            // vacated bottom slot, the gap returns to the top, and start
            // advances — re-aligning the mapping with the shifted data.
            self.start = (self.start + 1) % self.n;
            self.gap = self.n;
            GapMove {
                from: self.n,
                to: 0,
            }
        } else {
            let mv = GapMove {
                from: self.gap - 1,
                to: self.gap,
            };
            self.gap -= 1;
            mv
        }
    }

    /// The average number of demand writes between two visits of the gap to
    /// the same line — i.e. how often any given line gets remapped.
    pub fn remap_period_writes(&self) -> u64 {
        (self.n + 1) * self.psi as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// The mapping must stay a bijection avoiding the gap at all times.
    fn check_bijection(sg: &StartGap) {
        let mut seen = HashSet::new();
        for l in 0..sg.logical_lines() {
            let p = sg.map(l);
            assert!(p < sg.physical_lines());
            assert_ne!(p, sg.gap(), "logical {l} mapped onto the gap");
            assert!(seen.insert(p), "physical line {p} mapped twice");
        }
    }

    #[test]
    fn initial_mapping_is_identity() {
        let sg = StartGap::new(8, 100);
        for l in 0..8 {
            assert_eq!(sg.map(l), l);
        }
        check_bijection(&sg);
    }

    #[test]
    fn bijection_preserved_across_many_moves() {
        let mut sg = StartGap::new(16, 1);
        for _ in 0..500 {
            sg.on_write();
            check_bijection(&sg);
        }
    }

    #[test]
    fn gap_moves_every_psi_writes() {
        let mut sg = StartGap::new(8, 3);
        assert!(sg.on_write().is_none());
        assert!(sg.on_write().is_none());
        let mv = sg.on_write().expect("third write moves the gap");
        assert_eq!(mv, GapMove { from: 7, to: 8 });
        assert_eq!(sg.gap(), 7);
    }

    #[test]
    fn every_line_visits_every_slot() {
        // After n*(n+1) gap moves the rotation is complete; each logical
        // line should have occupied every physical slot at some point.
        let n = 6u64;
        let mut sg = StartGap::new(n, 1);
        let mut visited: Vec<HashSet<u64>> = (0..n).map(|_| HashSet::new()).collect();
        for _ in 0..(n * (n + 1) + 1) {
            for l in 0..n {
                visited[l as usize].insert(sg.map(l));
            }
            sg.on_write();
        }
        for (l, v) in visited.iter().enumerate() {
            assert_eq!(v.len() as u64, n + 1, "logical {l} visited {v:?}");
        }
    }

    #[test]
    fn wrap_advances_start() {
        let n = 4u64;
        let mut sg = StartGap::new(n, 1);
        for _ in 0..n {
            sg.move_gap();
        }
        assert_eq!(sg.gap(), 0);
        assert_eq!(sg.start(), 0);
        sg.move_gap(); // wrap
        assert_eq!(sg.gap(), n);
        assert_eq!(sg.start(), 1);
        check_bijection(&sg);
    }

    #[test]
    fn copies_keep_data_reachable() {
        // Simulate the physical copies the controller performs and check
        // the invariant phys[map(l)] == l across many moves (including
        // wraps).
        let n = 5u64;
        let mut sg = StartGap::new(n, 1);
        let mut phys: Vec<Option<u64>> = (0..n).map(Some).chain([None]).collect();
        for step in 0..200 {
            let mv = sg.move_gap();
            phys[mv.to as usize] = phys[mv.from as usize].take();
            for l in 0..n {
                assert_eq!(
                    phys[sg.map(l) as usize],
                    Some(l),
                    "step {step}: logical {l} lost (gap {}, start {})",
                    sg.gap(),
                    sg.start()
                );
            }
        }
    }

    #[test]
    fn remap_period() {
        let sg = StartGap::new(100, 100);
        assert_eq!(sg.remap_period_writes(), 101 * 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn map_checks_range() {
        StartGap::new(4, 1).map(4);
    }
}
