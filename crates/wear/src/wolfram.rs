//! WoLFRaM-style wear-leveling with a programmable address decoder
//! (Yavits et al., arXiv:2010.02825).
//!
//! Where Start-Gap rotates the whole region through one gap slot and
//! Security Refresh re-keys an XOR mapping, WoLFRaM keeps an explicit
//! programmable decoder table and reprograms it at two granularities:
//!
//! * **Epoch remaps** — each epoch draws a fresh key and derives a target
//!   permutation of the logical lines over the currently healthy slots
//!   (a keyed Feistel network with cycle walking, so the permutation is
//!   deterministic and needs no stored state beyond the key). A migration
//!   pointer walks the logical space, and every ψ writes it aligns one
//!   line with its target via a physical swap — the same incremental
//!   pointer-walk shape as Security Refresh, but over an arbitrary
//!   (non-power-of-two, hole-punched) slot set.
//! * **Hot-slot swaps** — coarse per-slot write counters; when a slot's
//!   count climbs a threshold above the coldest active slot, the two
//!   exchange contents immediately instead of waiting for the epoch.
//!
//! WoLFRaM also folds in fault tolerance: the decoder keeps spare slots,
//! and when a physical line dies mid-write the hosted logical line is
//! redirected to the next spare ([`WearScheme::retire_line`]), so single
//! dead lines cost a spare instead of a dead address.

use pcm_util::child_seed;
use serde::{Deserialize, Serialize};

use crate::scheme::{WearEvent, WearScheme};

/// Spare physical slots kept per region: one plus one per 16 lines.
pub fn spare_lines(n: u64) -> u64 {
    1 + n / 16
}

/// Hot-slot swap threshold: a slot this many recorded writes above the
/// coldest active slot trades places with it without waiting for the
/// epoch walk.
const HOT_SWAP_THRESHOLD: u64 = 512;

/// The WoLFRaM programmable-decoder wear-leveling engine for `n` logical
/// lines over `n + spare_lines(n)` physical slots.
///
/// # Examples
///
/// ```
/// use pcm_wear::{Wolfram, WearScheme};
///
/// let mut w = Wolfram::new(16, 4, 7);
/// assert_eq!(w.physical_lines(), 18);
/// let before = w.map(3);
/// for i in 0u64..16 * 64 { w.on_write(i % 16); }
/// // After full epochs the decoder has been reprogrammed.
/// assert!(before < 18);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Wolfram {
    n: u64,
    psi: u32,
    seed: u64,
    /// Programmable decoder: logical line → physical slot.
    table: Vec<u64>,
    /// Inverse decoder: physical slot → hosted logical line.
    inverse: Vec<Option<u64>>,
    /// Slots that reported a hard failure and were taken out of service.
    retired: Vec<bool>,
    /// Target permutation the current epoch migrates toward.
    target: Vec<u64>,
    /// Next logical line the migration pointer will align.
    pointer: u64,
    writes_since_step: u32,
    epoch: u64,
    /// Coarse per-slot demand-write counters driving hot-slot swaps.
    writes: Vec<u64>,
    total_writes: u64,
    /// No hot-slot swap fires before this many total writes (cooldown).
    swap_ready_at: u64,
    /// Hot-slot swap threshold in writes above the coldest slot.
    threshold: u64,
    spares_used: u64,
}

impl Wolfram {
    /// Creates a WoLFRaM engine over `n` lines, advancing the epoch
    /// migration pointer every `psi` writes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `psi == 0`.
    pub fn new(n: u64, psi: u32, seed: u64) -> Self {
        assert!(n >= 2, "need at least two lines, got {n}");
        assert!(psi > 0, "migration period must be positive");
        let phys = n + spare_lines(n);
        let mut w = Wolfram {
            n,
            psi,
            seed,
            table: (0..n).collect(),
            inverse: (0..phys).map(|p| (p < n).then_some(p)).collect(),
            retired: vec![false; phys as usize],
            target: Vec::new(),
            pointer: 0,
            writes_since_step: 0,
            epoch: 0,
            writes: vec![0; phys as usize],
            total_writes: 0,
            swap_ready_at: 0,
            threshold: HOT_SWAP_THRESHOLD,
            spares_used: 0,
        };
        w.rebuild_target();
        w
    }

    /// Completed remap epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Spare slots consumed by retired lines.
    pub fn spares_used(&self) -> u64 {
        self.spares_used
    }

    /// The active slots (currently hosting a logical line), ascending.
    fn active_slots(&self) -> Vec<u64> {
        (0..self.inverse.len() as u64)
            .filter(|&p| self.inverse[p as usize].is_some())
            .collect()
    }

    /// Derives this epoch's target permutation: logical line `l` should end
    /// up on `active[perm(l)]` where `perm` is a keyed Feistel permutation
    /// of `0..n`.
    fn rebuild_target(&mut self) {
        let key = child_seed(self.seed, self.epoch);
        let active = self.active_slots();
        self.target = (0..self.n)
            .map(|l| active[feistel_perm(l, self.n, key) as usize])
            .collect();
    }

    /// Moves logical `l` onto slot `q`, displacing whatever line lives
    /// there into `l`'s old slot.
    fn swap_into(&mut self, l: u64, q: u64) {
        let p = self.table[l as usize];
        if p == q {
            return;
        }
        match self.inverse[q as usize] {
            Some(m) => {
                self.table[m as usize] = p;
                self.inverse[p as usize] = Some(m);
            }
            None => self.inverse[p as usize] = None,
        }
        self.table[l as usize] = q;
        self.inverse[q as usize] = Some(l);
    }

    /// Advances the migration pointer one step: aligns the next misplaced
    /// line with its epoch target and returns the physical swap.
    fn step(&mut self) -> WearEvent {
        let mut l = self.pointer;
        while l < self.n && self.table[l as usize] == self.target[l as usize] {
            l += 1;
        }
        let ev = if l < self.n {
            let p = self.table[l as usize];
            let q = self.target[l as usize];
            self.swap_into(l, q);
            WearEvent::Swap { a: p, b: q }
        } else {
            WearEvent::Swap { a: 0, b: 0 } // epoch tail: already aligned
        };
        self.pointer = l + 1;
        if self.pointer >= self.n {
            self.epoch += 1;
            self.pointer = 0;
            self.rebuild_target();
        }
        ev
    }

    /// The coldest active slot other than `hot` (fewest recorded writes,
    /// ties to the lowest index — fully deterministic).
    fn coldest_slot(&self, hot: u64) -> Option<(u64, u64)> {
        (0..self.inverse.len() as u64)
            .filter(|&p| p != hot && self.inverse[p as usize].is_some())
            .map(|p| (self.writes[p as usize], p))
            .min()
            .map(|(w, p)| (p, w))
    }
}

impl WearScheme for Wolfram {
    fn name(&self) -> &'static str {
        "wolfram"
    }

    fn logical_lines(&self) -> u64 {
        self.n
    }

    fn physical_lines(&self) -> u64 {
        self.n + spare_lines(self.n)
    }

    fn map(&self, logical: u64) -> u64 {
        assert!(logical < self.n, "logical line {logical} out of range");
        self.table[logical as usize]
    }

    fn on_write(&mut self, logical: u64) -> Option<WearEvent> {
        let p = self.map(logical);
        self.writes[p as usize] += 1;
        self.total_writes += 1;
        self.writes_since_step += 1;
        if self.writes_since_step >= self.psi {
            self.writes_since_step = 0;
            return Some(self.step());
        }
        if self.total_writes >= self.swap_ready_at {
            if let Some((cold, cold_writes)) = self.coldest_slot(p) {
                if self.writes[p as usize] >= cold_writes + self.threshold {
                    self.swap_ready_at = self.total_writes + self.threshold;
                    if let Some(l) = self.inverse[p as usize] {
                        self.swap_into(l, cold);
                        return Some(WearEvent::Swap { a: p, b: cold });
                    }
                }
            }
        }
        None
    }

    fn retire_line(&mut self, phys: u64) -> Option<u64> {
        if phys >= self.inverse.len() as u64 || self.retired[phys as usize] {
            return None;
        }
        self.retired[phys as usize] = true;
        let hosted = self.inverse[phys as usize]?;
        // First spare-or-healthy slot that is empty and not retired.
        let spare = (0..self.inverse.len() as u64)
            .find(|&p| !self.retired[p as usize] && self.inverse[p as usize].is_none())?;
        self.inverse[phys as usize] = None;
        self.table[hosted as usize] = spare;
        self.inverse[spare as usize] = Some(hosted);
        self.spares_used += 1;
        // Keep the epoch target valid: nothing may migrate onto a dead
        // slot, so the retired slot's role passes to the replacement.
        for t in &mut self.target {
            if *t == phys {
                *t = spare;
            }
        }
        Some(spare)
    }

    fn digest_words(&self) -> Vec<u64> {
        let fold = self.table.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &p| {
            (h ^ p).wrapping_mul(0x100_0000_01b3)
        });
        vec![self.epoch, self.pointer, self.spares_used, fold]
    }
}

/// A keyed permutation of `0..n` via a 4-round Feistel network over the
/// smallest even-width power-of-two domain ≥ `n`, cycle-walking until the
/// image lands back inside `0..n`.
fn feistel_perm(x: u64, n: u64, key: u64) -> u64 {
    debug_assert!(x < n);
    let mut half = 1u32;
    while 1u64 << (2 * half) < n {
        half += 1;
    }
    let mask = (1u64 << half) - 1;
    let mut v = x;
    loop {
        let (mut l, mut r) = (v >> half, v & mask);
        for round in 0..4u64 {
            let f = child_seed(key, (round << (2 * half)) | r) & mask;
            let next = l ^ f;
            l = r;
            r = next;
        }
        v = (l << half) | r;
        if v < n {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_bijection(w: &Wolfram) {
        let mut seen = HashSet::new();
        for l in 0..w.logical_lines() {
            let p = w.map(l);
            assert!(p < w.physical_lines());
            assert!(seen.insert(p), "slot {p} mapped twice");
        }
    }

    #[test]
    fn feistel_is_a_permutation() {
        for n in [2u64, 5, 16, 33, 96] {
            for key in [1u64, 0xdead_beef, 42] {
                let image: HashSet<u64> = (0..n).map(|x| feistel_perm(x, n, key)).collect();
                assert_eq!(image.len() as u64, n, "n={n} key={key}");
                assert!(image.iter().all(|&y| y < n));
            }
        }
    }

    #[test]
    fn initial_mapping_is_identity_and_bijective() {
        let w = Wolfram::new(16, 4, 9);
        for l in 0..16 {
            assert_eq!(w.map(l), l);
        }
        check_bijection(&w);
    }

    #[test]
    fn swaps_track_the_mapping() {
        // Shadow the physical contents; phys[map(l)] == l must survive
        // every emitted event across several epochs.
        let n = 24u64;
        let mut w = Wolfram::new(n, 1, 13);
        let phys_n = w.physical_lines();
        let mut slots: Vec<Option<u64>> = (0..phys_n).map(|p| (p < n).then_some(p)).collect();
        for step in 0..2_000u64 {
            if let Some(WearEvent::Swap { a, b }) = w.on_write(step % n) {
                slots.swap(a as usize, b as usize);
            }
            for l in 0..n {
                assert_eq!(
                    slots[w.map(l) as usize],
                    Some(l),
                    "step {step}: logical {l} lost (epoch {})",
                    w.epoch()
                );
            }
        }
        assert!(w.epoch() >= 2, "test must cover multiple epochs");
    }

    #[test]
    fn epochs_reprogram_the_decoder() {
        let n = 16u64;
        let mut w = Wolfram::new(n, 1, 3);
        let initial: Vec<u64> = (0..n).map(|l| w.map(l)).collect();
        for i in 0..n * 6 {
            w.on_write(i % n);
        }
        assert!(w.epoch() >= 2);
        let later: Vec<u64> = (0..n).map(|l| w.map(l)).collect();
        assert_ne!(initial, later, "decoder must be reprogrammed");
        check_bijection(&w);
    }

    #[test]
    fn hot_slot_swap_moves_the_hot_line() {
        // Hammer one line with the epoch walk effectively off (huge psi):
        // the hot-slot threshold must eventually move it to a cold slot.
        let n = 8u64;
        let mut w = Wolfram::new(n, 10_000, 5);
        let before = w.map(0);
        let mut moved = false;
        for _ in 0..w.threshold * 3 {
            if let Some(WearEvent::Swap { a, b }) = w.on_write(0) {
                assert!(a == before || b == before);
                moved = true;
                break;
            }
        }
        assert!(moved, "hot line never swapped");
        assert_ne!(w.map(0), before);
        check_bijection(&w);
    }

    #[test]
    fn retire_redirects_to_a_spare() {
        let n = 16u64;
        let mut w = Wolfram::new(n, 4, 7);
        let victim = w.map(5);
        let spare = w.retire_line(victim).expect("spares available");
        assert_ne!(spare, victim);
        assert_eq!(w.map(5), spare);
        assert_eq!(w.spares_used(), 1);
        check_bijection(&w);
        // The retired slot never reappears in the mapping.
        for i in 0..4_000u64 {
            w.on_write(i % n);
            assert!((0..n).all(|l| w.map(l) != victim), "dead slot reused");
        }
    }

    #[test]
    fn retire_exhausts_spares_then_declines() {
        let n = 16u64; // 2 spares
        let mut w = Wolfram::new(n, 4, 7);
        assert!(w.retire_line(w.map(0)).is_some());
        assert!(w.retire_line(w.map(1)).is_some());
        assert_eq!(w.retire_line(w.map(2)), None, "spares exhausted");
        // Retiring the same slot twice is a no-op.
        let dead = w.map(0);
        let w2 = w.clone();
        assert_eq!(w.retire_line(dead), w2.clone().retire_line(dead));
    }

    #[test]
    fn deterministic_replay() {
        let mut a = Wolfram::new(32, 3, 21);
        let mut b = Wolfram::new(32, 3, 21);
        for i in 0..5_000u64 {
            assert_eq!(a.on_write(i % 32), b.on_write(i % 32));
        }
        assert_eq!(a, b);
    }
}
