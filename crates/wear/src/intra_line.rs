//! Counter-based intra-line wear-leveling (paper §III-A.2).
//!
//! Compression pins bit flips to the low bytes of a line, wearing them out
//! long before the rest — the paper's Comp configuration *loses* lifetime
//! on barely-compressible workloads for exactly this reason. The fix is to
//! rotate the compression-window start across the 64 bytes of the line over
//! time. To avoid per-line counters, a **single 16-bit counter per bank**
//! counts writes; each saturation advances the bank's rotation offset by a
//! one-byte step. With ~2¹⁰ writes per line between rotations (2¹⁶ bank
//! writes over ~2⁶ hot lines) the rotation is slow enough to amortize
//! metadata updates yet fast enough to even out wear.

use serde::{Deserialize, Serialize};

/// Per-bank intra-line wear-leveling state.
///
/// # Examples
///
/// ```
/// use pcm_wear::IntraLineLeveler;
///
/// let mut wl = IntraLineLeveler::new(4, 1); // tiny period for the example
/// assert_eq!(wl.offset(), 0);
/// for _ in 0..4 { wl.note_write(); }
/// assert_eq!(wl.offset(), 1); // rotated by one byte
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntraLineLeveler {
    period: u32,
    step_bytes: usize,
    counter: u32,
    offset: usize,
    rotations: u64,
}

impl IntraLineLeveler {
    /// Creates a leveler that rotates by `step_bytes` every `period` bank
    /// writes.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `step_bytes` is 0 or ≥ 64.
    pub fn new(period: u32, step_bytes: usize) -> Self {
        assert!(period > 0, "rotation period must be positive");
        assert!((1..64).contains(&step_bytes), "step must be 1..64 bytes");
        IntraLineLeveler {
            period,
            step_bytes,
            counter: 0,
            offset: 0,
            rotations: 0,
        }
    }

    /// The paper's configuration: 16-bit counter, one-byte step.
    pub fn paper() -> Self {
        IntraLineLeveler::new(1 << 16, 1)
    }

    /// Current rotation offset in bytes (`0..64`).
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Total rotations performed.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Records one write to the bank; returns `true` when the counter
    /// saturated and the offset advanced.
    pub fn note_write(&mut self) -> bool {
        self.counter += 1;
        if self.counter < self.period {
            return false;
        }
        self.counter = 0;
        self.offset = (self.offset + self.step_bytes) % pcm_util::DATA_BYTES;
        self.rotations += 1;
        true
    }

    /// Maps a logical byte offset within the line to its physical byte
    /// under the current rotation.
    pub fn physical_byte(&self, logical: usize) -> usize {
        (logical + self.offset) % pcm_util::DATA_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_cycles_through_all_offsets() {
        let mut wl = IntraLineLeveler::new(1, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(wl.offset());
            assert!(wl.note_write());
        }
        assert_eq!(seen.len(), 64);
        assert_eq!(wl.offset(), 0, "wraps back after 64 steps");
        assert_eq!(wl.rotations(), 64);
    }

    #[test]
    fn counter_period_respected() {
        let mut wl = IntraLineLeveler::new(100, 1);
        for _ in 0..99 {
            assert!(!wl.note_write());
        }
        assert!(wl.note_write());
        assert_eq!(wl.offset(), 1);
    }

    #[test]
    fn physical_byte_mapping() {
        let mut wl = IntraLineLeveler::new(1, 8);
        assert_eq!(wl.physical_byte(0), 0);
        wl.note_write();
        assert_eq!(wl.physical_byte(0), 8);
        assert_eq!(wl.physical_byte(60), 4); // wraps
    }

    #[test]
    fn paper_configuration() {
        let wl = IntraLineLeveler::paper();
        assert_eq!(wl.offset(), 0);
        // 16-bit counter: 65536 writes per rotation.
        let mut wl2 = wl;
        for _ in 0..(1 << 16) - 1 {
            assert!(!wl2.note_write());
        }
        assert!(wl2.note_write());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_period() {
        IntraLineLeveler::new(0, 1);
    }
}
