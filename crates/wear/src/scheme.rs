//! The inter-line wear-leveling trait every remapping engine implements.
//!
//! The controller only ever sees this interface: it asks the scheme where
//! a logical line lives (`map`), reports demand writes (`on_write`), and
//! performs whatever physical data movement the returned [`WearEvent`]
//! describes. The scheme owns all remapping state; the controller owns all
//! data movement. That split is what lets Start-Gap, Security Refresh, and
//! WoLFRaM ride the same controller loop with no scheme-specific branches.
//!
//! Contract:
//!
//! * `map` is a bijection from `0..logical_lines()` into
//!   `0..physical_lines()` at every instant (schemes with spare slots leave
//!   the spares unmapped).
//! * `on_write` may mutate the mapping, but only in the way the returned
//!   event describes: after a `Move { to }`, the logical line previously
//!   stored at some physical slot now maps to `to`; after a
//!   `Swap { a, b }`, the two logical lines previously at `a` and `b` have
//!   exchanged slots. The controller copies data to match *after* the call,
//!   so `map` must already reflect the new positions when the event is
//!   returned.
//! * `retire_line` lets fault-redirecting schemes (WoLFRaM) substitute a
//!   spare physical slot when a line dies mid-write; schemes without spares
//!   return `None` and the controller parks the line as before.

use serde::{Deserialize, Serialize};

use crate::security_refresh::{SecurityRefresh, Swap};
use crate::start_gap::{GapMove, StartGap};

/// A physical data movement requested by a wear scheme.
///
/// The controller performs the copy/exchange and charges the resulting
/// writes to the destination lines' wear, exactly like demand writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WearEvent {
    /// Rewrite the logical line now mapped to physical slot `to` (Start-Gap
    /// gap migration; `to` may hold no logical line after a wrap, in which
    /// case there is nothing to copy).
    Move {
        /// Destination physical slot.
        to: u64,
    },
    /// Exchange the contents of physical slots `a` and `b` (Security
    /// Refresh pair swap, WoLFRaM migration). `a == b` means the pair was
    /// a fixed point and no data moves.
    Swap {
        /// First physical slot.
        a: u64,
        /// Second physical slot.
        b: u64,
    },
}

/// An inter-line wear-leveling scheme: a mutable logical→physical line
/// remapper that occasionally asks the controller to move data.
pub trait WearScheme: Send + std::fmt::Debug {
    /// Scheme name as printed in reports and stack specs.
    fn name(&self) -> &'static str;

    /// Number of logical lines served.
    fn logical_lines(&self) -> u64;

    /// Number of physical lines required (≥ `logical_lines()`; the excess
    /// are gap/spare slots).
    fn physical_lines(&self) -> u64;

    /// Current physical slot of `logical`.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= logical_lines()`.
    fn map(&self, logical: u64) -> u64;

    /// Records one demand write to `logical`; optionally returns a data
    /// movement the controller must perform (the mapping already reflects
    /// it — see the module docs).
    fn on_write(&mut self, logical: u64) -> Option<WearEvent>;

    /// Reports that physical slot `phys` can no longer store data. A
    /// scheme with spare capacity remaps the hosted logical line to a
    /// fresh slot and returns it; the controller retries the write there.
    /// The default (no spares) returns `None` and the line stays dead.
    fn retire_line(&mut self, phys: u64) -> Option<u64> {
        let _ = phys;
        None
    }

    /// The scheme's register state, folded into per-bank wear digests in
    /// order. Keep the order stable: digests are compared bit-for-bit
    /// across runs.
    fn digest_words(&self) -> Vec<u64>;
}

impl WearScheme for StartGap {
    fn name(&self) -> &'static str {
        "start-gap"
    }

    fn logical_lines(&self) -> u64 {
        StartGap::logical_lines(self)
    }

    fn physical_lines(&self) -> u64 {
        StartGap::physical_lines(self)
    }

    fn map(&self, logical: u64) -> u64 {
        StartGap::map(self, logical)
    }

    fn on_write(&mut self, _logical: u64) -> Option<WearEvent> {
        StartGap::on_write(self).map(|GapMove { to, .. }| WearEvent::Move { to })
    }

    fn digest_words(&self) -> Vec<u64> {
        // Gap before start: the order the pre-trait bank digest folded the
        // registers, preserved so existing digests stay bit-identical.
        vec![self.gap(), self.start()]
    }
}

impl WearScheme for SecurityRefresh {
    fn name(&self) -> &'static str {
        "security-refresh"
    }

    fn logical_lines(&self) -> u64 {
        self.lines()
    }

    fn physical_lines(&self) -> u64 {
        self.lines()
    }

    fn map(&self, logical: u64) -> u64 {
        SecurityRefresh::map(self, logical)
    }

    fn on_write(&mut self, _logical: u64) -> Option<WearEvent> {
        SecurityRefresh::on_write(self).map(|Swap { a, b }| WearEvent::Swap { a, b })
    }

    fn digest_words(&self) -> Vec<u64> {
        vec![self.pointer(), self.epoch()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bijection(s: &dyn WearScheme) {
        let mut seen = std::collections::HashSet::new();
        for l in 0..s.logical_lines() {
            let p = s.map(l);
            assert!(p < s.physical_lines());
            assert!(seen.insert(p), "{}: slot {p} mapped twice", s.name());
        }
    }

    #[test]
    fn start_gap_move_events_match_gap_moves() {
        let mut sg = StartGap::new(8, 2);
        let s: &mut dyn WearScheme = &mut sg;
        assert!(s.on_write(0).is_none());
        let ev = s.on_write(3).expect("second write moves the gap");
        assert_eq!(ev, WearEvent::Move { to: 8 });
        check_bijection(s);
    }

    #[test]
    fn security_refresh_swap_events_match_steps() {
        let mut sr = SecurityRefresh::new(16, 1, 7);
        let s: &mut dyn WearScheme = &mut sr;
        for i in 0..64 {
            let ev = s.on_write(i % 16).expect("psi=1 steps every write");
            assert!(matches!(ev, WearEvent::Swap { .. }));
            check_bijection(s);
        }
    }

    #[test]
    fn default_retire_declines() {
        let mut sg = StartGap::new(4, 1);
        assert_eq!(WearScheme::retire_line(&mut sg, 2), None);
    }
}
