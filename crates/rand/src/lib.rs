//! A self-contained, deterministic reimplementation of the subset of the
//! `rand` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal drop-in: same module paths (`rand::rngs::StdRng`,
//! `rand::seq::{SliceRandom, IndexedRandom}`), same trait split
//! ([`Rng`] = core generator, [`RngExt`] = convenience methods, blanket
//! implemented), same call-site spelling (`rng.random()`,
//! `rng.random_range(a..b)`, `rng.random_bool(p)`).
//!
//! Everything here is **deterministic given the seed** — the property the
//! simulators and the verification harness rely on. The stream is *not*
//! bit-compatible with upstream `rand`; it doesn't need to be, because
//! every experiment in this repository derives its randomness from
//! explicit seeds through this one implementation.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through a
//! SplitMix64 expansion — a well-studied, fast, equidistributed
//! combination.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{RngExt, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.random::<u64>(), b.random::<u64>());
//! let x = a.random_range(10..20);
//! assert!((10..20).contains(&x));
//! ```

/// A source of randomness: the core trait, object-safe.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of
    /// [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: the standard state expander for 64-bit seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case; the SplitMix64
            // expansion cannot produce it from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from their whole domain
/// (`f32`/`f64`: uniformly from `[0, 1)`).
pub trait Random: Sized {
    /// Samples one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for i128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let draw = uniform_u64(rng, span as u64) as $u;
                (self.start as $u).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full-domain inclusive range.
                    return <$t as Random>::random(rng);
                }
                let draw = uniform_u64(rng, span as u64) as $u;
                (lo as $u).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `0..span` (`span > 0`) by 128-bit multiply-shift.
///
/// The modulo bias of the multiply-shift method is at most `span / 2^64`
/// — unobservable at simulation scales, and crucially *deterministic*.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Convenience methods over any [`Rng`], blanket-implemented.
pub trait RngExt: Rng {
    /// Samples a value uniformly over `T`'s domain (`[0, 1)` for floats).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.random::<f64>() < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "denominator must be positive");
        assert!(numerator <= denominator, "ratio above 1");
        uniform_u64(self, denominator as u64) < numerator as u64
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{uniform_u64, Rng};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.random_range(0usize..1);
            assert_eq!(z, 0);
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 8 values should appear: {seen:?}"
        );
    }

    #[test]
    fn bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..64).collect::<Vec<_>>(),
            "shuffle is a permutation"
        );
        assert!(
            v.windows(2).any(|w| w[0] > w[1]),
            "shuffle changed the order"
        );
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        super::Rng::fill_bytes(&mut rng, &mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
