//! Equivalence suite for the word-at-a-time `Line512` / `FaultMap` kernels.
//!
//! The library implements these operations with masked `u64` arithmetic;
//! each property here re-derives the result with a deliberately naive
//! per-bit (or per-byte) reference built only on `bit`/`byte` accessors,
//! so a regression in the word-level masking shows up as a disagreement
//! with first-principles semantics.

use pcm_util::fault::StuckAt;
use pcm_util::{FaultMap, FaultPlan, Line512, DATA_BITS, DATA_BYTES};
use proptest::prelude::*;
use std::ops::Range;

fn arb_line() -> impl Strategy<Value = Line512> {
    prop::array::uniform8(any::<u64>()).prop_map(Line512::from_words)
}

/// An arbitrary (possibly empty) bit range within the line.
fn arb_bit_range() -> impl Strategy<Value = Range<usize>> {
    (0..=DATA_BITS, 0..=DATA_BITS).prop_map(|(a, b)| a.min(b)..a.max(b))
}

/// A random fault population of 0..~64 stuck cells.
fn arb_faults() -> impl Strategy<Value = FaultMap> {
    (any::<u64>(), 0u32..64, any::<f64>())
        .prop_map(|(seed, count, frac)| FaultPlan::with_count(seed, count, frac).for_line(0))
}

fn ref_count_ones_in(line: &Line512, range: Range<usize>) -> u32 {
    range.filter(|&i| line.bit(i)).count() as u32
}

fn ref_rotate_left_bytes(line: &Line512, n: usize) -> Line512 {
    let mut out = Line512::zero();
    for i in 0..DATA_BYTES {
        out.set_byte((i + n) % DATA_BYTES, line.byte(i));
    }
    out
}

fn ref_bit_range_mask(range: Range<usize>) -> Line512 {
    Line512::from_fn(|i| range.contains(&i))
}

fn ref_masked(faults: &FaultMap, mask: &Line512) -> FaultMap {
    faults.iter().filter(|f| mask.bit(f.pos as usize)).collect()
}

fn ref_apply(faults: &FaultMap, line: &Line512) -> Line512 {
    let mut out = *line;
    for f in faults.iter() {
        out.set_bit(f.pos as usize, f.value);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Masked head/tail word popcounts agree with a per-bit scan on every
    /// range, including empty, single-word, and word-straddling ones.
    #[test]
    fn count_ones_in_matches_per_bit(line in arb_line(), range in arb_bit_range()) {
        prop_assert_eq!(line.count_ones_in(range.clone()), ref_count_ones_in(&line, range));
    }

    /// The word-rotate + sub-word-shift decomposition of a byte rotation
    /// agrees with moving bytes one at a time.
    #[test]
    fn rotate_left_bytes_matches_per_byte(line in arb_line(), n in 0usize..3 * DATA_BYTES) {
        prop_assert_eq!(line.rotate_left_bytes(n), ref_rotate_left_bytes(&line, n));
    }

    /// Left and right rotations are inverses.
    #[test]
    fn rotations_invert(line in arb_line(), n in 0usize..DATA_BYTES) {
        prop_assert_eq!(line.rotate_left_bytes(n).rotate_right_bytes(n), line);
    }

    /// The head/tail mask builder produces exactly the bits of the range.
    #[test]
    fn bit_range_mask_matches_per_bit(range in arb_bit_range()) {
        prop_assert_eq!(Line512::bit_range_mask(range.clone()), ref_bit_range_mask(range));
    }

    /// The byte-window mask is the bit mask of the window's bit span.
    #[test]
    fn byte_window_mask_matches_per_bit(
        offset in 0usize..DATA_BYTES,
        raw_len in 1usize..=DATA_BYTES,
    ) {
        let len = raw_len.min(DATA_BYTES - offset);
        let expected = ref_bit_range_mask(offset * 8..(offset + len) * 8);
        prop_assert_eq!(Line512::byte_window_mask(offset, len), expected);
    }

    /// `FaultMap::masked` keeps exactly the faults whose position bit is in
    /// the mask, with stuck values intact.
    #[test]
    fn masked_matches_per_fault_filter(faults in arb_faults(), mask in arb_line()) {
        let fast = faults.masked(mask);
        let slow = ref_masked(&faults, &mask);
        prop_assert_eq!(fast.positions(), slow.positions());
        for f in slow.iter() {
            prop_assert_eq!(fast.stuck_value(f.pos as usize), Some(f.value));
        }
        prop_assert_eq!(fast.count(), slow.count());
    }

    /// The two-mask `apply` agrees with setting each stuck bit one by one.
    #[test]
    fn apply_matches_per_bit_overwrite(faults in arb_faults(), line in arb_line()) {
        prop_assert_eq!(faults.apply(line), ref_apply(&faults, &line));
    }

    /// Byte splicing (`with_bytes_at` / `bytes_at`) round-trips and matches
    /// per-byte editing.
    #[test]
    fn byte_splice_matches_per_byte(
        line in arb_line(),
        offset in 0usize..DATA_BYTES,
        raw_data in prop::collection::vec(any::<u8>(), 0..=DATA_BYTES),
    ) {
        let data = &raw_data[..raw_data.len().min(DATA_BYTES - offset)];
        let fast = line.with_bytes_at(offset, data);
        let mut slow = line;
        for (i, &b) in data.iter().enumerate() {
            slow.set_byte(offset + i, b);
        }
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(fast.bytes_at(offset, data.len()), data.to_vec());
    }
}

#[test]
fn count_ones_in_edge_ranges() {
    let ones = Line512::ones();
    assert_eq!(ones.count_ones_in(0..0), 0);
    assert_eq!(ones.count_ones_in(511..512), 1);
    assert_eq!(ones.count_ones_in(0..512), 512);
    assert_eq!(ones.count_ones_in(63..65), 2);
    assert_eq!(ones.count_ones_in(64..128), 64);
}

#[test]
fn masked_preserves_polarity_both_ways() {
    let faults: FaultMap = [
        StuckAt {
            pos: 3,
            value: true,
        },
        StuckAt {
            pos: 100,
            value: false,
        },
        StuckAt {
            pos: 511,
            value: true,
        },
    ]
    .into_iter()
    .collect();
    let mask = Line512::byte_window_mask(0, 16); // bits 0..128
    let kept = faults.masked(mask);
    assert_eq!(kept.count(), 2);
    assert_eq!(kept.stuck_value(3), Some(true));
    assert_eq!(kept.stuck_value(100), Some(false));
    assert_eq!(kept.stuck_value(511), None);
}
