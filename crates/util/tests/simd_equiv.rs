//! Differential rig for the struct-of-arrays batch kernels.
//!
//! Every kernel in `pcm_util::simd` exists in (up to) three forms: the
//! public dispatch wrapper (scalar by default, vector under the `simd`
//! cargo feature when the CPU supports it), the scalar reference in
//! `simd::scalar`, and — here — a deliberately naive per-bit / per-lane
//! re-derivation built only on `Line512::bit` accessors. Each property
//! asserts all three agree bit-for-bit on arbitrary lines, partial
//! batches (1..=64 live lanes), and adversarial patterns. Running the
//! suite twice (default build and `--features simd`) is what turns the
//! dispatch-vs-scalar assertions into a real vector-vs-scalar diff.

use pcm_util::simd::{self, LineBatch64, MaskAccumulator, BATCH_LANES};
use pcm_util::{Line512, DATA_BITS, DATA_BYTES};
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = Line512> {
    prop::array::uniform8(any::<u64>()).prop_map(Line512::from_words)
}

/// A partial batch worth of lines: 1..=64 of them.
fn arb_lines() -> impl Strategy<Value = Vec<Line512>> {
    prop::collection::vec(arb_line(), 1..=BATCH_LANES)
}

/// Two equally long line vectors (lane-paired batches).
fn arb_line_pairs() -> impl Strategy<Value = (Vec<Line512>, Vec<Line512>)> {
    (1..=BATCH_LANES).prop_flat_map(|n| {
        (
            prop::collection::vec(arb_line(), n),
            prop::collection::vec(arb_line(), n),
        )
    })
}

/// A byte window `[offset, offset + len)` that stays inside the line.
fn arb_byte_window() -> impl Strategy<Value = (usize, usize)> {
    (0..=DATA_BYTES).prop_flat_map(|off| (Just(off), 0..=DATA_BYTES - off))
}

fn ref_popcount(line: &Line512) -> u32 {
    (0..DATA_BITS).filter(|&i| line.bit(i)).count() as u32
}

fn ref_window_popcount(line: &Line512, offset: usize, len: usize) -> u32 {
    (offset * 8..(offset + len) * 8)
        .filter(|&i| line.bit(i))
        .count() as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Batch transpose round-trips: every live lane reads back exactly,
    /// the live mask is the expected prefix, dead lanes stay zero planes.
    #[test]
    fn batch_transpose_round_trips(lines in arb_lines()) {
        let batch = LineBatch64::from_lines(&lines);
        prop_assert_eq!(batch.len(), lines.len());
        let want_live = if lines.len() == BATCH_LANES {
            u64::MAX
        } else {
            (1u64 << lines.len()) - 1
        };
        prop_assert_eq!(batch.live_mask(), want_live);
        for (lane, line) in lines.iter().enumerate() {
            prop_assert_eq!(batch.lane(lane), *line);
        }
        prop_assert_eq!(batch.to_lines(), lines.clone());
        for w in 0..8 {
            for lane in lines.len()..BATCH_LANES {
                prop_assert_eq!(batch.plane(w)[lane], 0, "dead lane {} not zeroed", lane);
            }
        }
    }

    /// Dispatch, scalar fallback, and the per-bit reference agree on
    /// per-lane popcounts; dead lanes report zero.
    #[test]
    fn batch_popcount_equiv(lines in arb_lines()) {
        let batch = LineBatch64::from_lines(&lines);
        let got = simd::batch_popcount(&batch);
        prop_assert_eq!(got, simd::scalar::batch_popcount(&batch));
        for (lane, line) in lines.iter().enumerate() {
            prop_assert_eq!(got[lane], ref_popcount(line), "lane {}", lane);
            prop_assert_eq!(got[lane], line.count_ones());
        }
        for lane in lines.len()..BATCH_LANES {
            prop_assert_eq!(got[lane], 0);
        }
    }

    /// Per-lane Hamming distance equals a per-bit XOR count in every lane.
    #[test]
    fn batch_hamming_equiv(pair in arb_line_pairs()) {
        let (xs, ys) = pair;
        let a = LineBatch64::from_lines(&xs);
        let b = LineBatch64::from_lines(&ys);
        let got = simd::batch_hamming(&a, &b);
        prop_assert_eq!(got, simd::scalar::batch_hamming(&a, &b));
        for lane in 0..xs.len() {
            let want = ref_popcount(&(xs[lane] ^ ys[lane]));
            prop_assert_eq!(got[lane], want, "lane {}", lane);
        }
        for lane in xs.len()..BATCH_LANES {
            prop_assert_eq!(got[lane], 0);
        }
    }

    /// Byte-window popcounts equal the per-bit scan of the window in
    /// every lane, for every legal `(offset, len)` including empty.
    #[test]
    fn batch_window_popcount_equiv(lines in arb_lines(), window in arb_byte_window()) {
        let (off, len) = window;
        let batch = LineBatch64::from_lines(&lines);
        let got = simd::batch_window_popcount(&batch, off, len);
        let mask = Line512::byte_window_mask(off, len);
        prop_assert_eq!(got, simd::scalar::batch_masked_popcount(&batch, &mask.words()));
        for (lane, line) in lines.iter().enumerate() {
            prop_assert_eq!(got[lane], ref_window_popcount(line, off, len), "lane {}", lane);
        }
    }

    /// Lane-wise XOR/AND match the per-line operators lane by lane and
    /// preserve the live mask.
    #[test]
    fn batch_xor_and_equiv(pair in arb_line_pairs()) {
        let (xs, ys) = pair;
        let a = LineBatch64::from_lines(&xs);
        let b = LineBatch64::from_lines(&ys);
        let x = simd::batch_xor(&a, &b);
        let n = simd::batch_and(&a, &b);
        prop_assert_eq!(x.live_mask(), a.live_mask());
        prop_assert_eq!(n.live_mask(), a.live_mask());
        for lane in 0..xs.len() {
            prop_assert_eq!(x.lane(lane), xs[lane] ^ ys[lane]);
            prop_assert_eq!(n.lane(lane), xs[lane] & ys[lane]);
        }
    }

    /// `popcount512` (never dispatched) equals the per-bit count and the
    /// scalar body.
    #[test]
    fn popcount512_equiv(line in arb_line()) {
        let got = simd::popcount512(&line.words());
        prop_assert_eq!(got, simd::scalar::popcount512(&line.words()));
        prop_assert_eq!(got, ref_popcount(&line));
    }

    /// `mask_accumulate` bumps exactly the counters under the mask's set
    /// bits, by exactly one.
    #[test]
    fn mask_accumulate_equiv(
        mask in arb_line(),
        base in prop::collection::vec(0u32..1000, DATA_BITS),
    ) {
        let mut got = base.clone();
        simd::mask_accumulate(&mut got, &mask.words());
        let mut scalar = base.clone();
        simd::scalar::mask_accumulate(&mut scalar, &mask.words());
        prop_assert_eq!(&got, &scalar);
        for pos in 0..DATA_BITS {
            let want = base[pos] + u32::from(mask.bit(pos));
            prop_assert_eq!(got[pos], want, "pos {}", pos);
        }
    }

    /// `wear_step` increments exactly the programmed lanes and reports
    /// exactly the lanes whose new wear exceeds endurance.
    #[test]
    fn wear_step_equiv(
        program in arb_line(),
        endurance in prop::collection::vec(0u32..4, DATA_BITS),
        wear0 in prop::collection::vec(0u32..4, DATA_BITS),
    ) {
        // Keep the precondition of the wear model: live cells never start
        // past their endurance.
        let base: Vec<u32> = wear0
            .iter()
            .zip(&endurance)
            .map(|(&w, &e)| w.min(e))
            .collect();
        let mut got_wear = base.clone();
        let got_died = simd::wear_step(&mut got_wear, &endurance, &program.words());
        let mut scalar_wear = base.clone();
        let scalar_died =
            simd::scalar::wear_step(&mut scalar_wear, &endurance, &program.words());
        prop_assert_eq!(&got_wear, &scalar_wear);
        prop_assert_eq!(got_died, scalar_died);
        let died = Line512::from_words(got_died);
        for pos in 0..DATA_BITS {
            let want_wear = base[pos] + u32::from(program.bit(pos));
            prop_assert_eq!(got_wear[pos], want_wear, "wear at {}", pos);
            let want_dead = program.bit(pos) && want_wear > endurance[pos];
            prop_assert_eq!(died.bit(pos), want_dead, "death at {}", pos);
        }
    }

    /// Per-chunk popcounts agree with a per-bit scan of each chunk for
    /// every legal chunk width.
    #[test]
    fn chunk_popcounts_equiv(
        line in arb_line(),
        chunk_bits in prop::sample::select(vec![2usize, 4, 8, 16, 32, 64, 128, 256, 512]),
    ) {
        let chunks = DATA_BITS / chunk_bits;
        let mut got = vec![0u32; chunks];
        simd::chunk_popcounts(&line.words(), chunk_bits, &mut got);
        let mut scalar = vec![0u32; chunks];
        simd::scalar::chunk_popcounts(&line.words(), chunk_bits, &mut scalar);
        prop_assert_eq!(&got, &scalar);
        for c in 0..chunks {
            let want = (c * chunk_bits..(c + 1) * chunk_bits)
                .filter(|&i| line.bit(i))
                .count() as u32;
            prop_assert_eq!(got[c], want, "chunk {}", c);
        }
    }

    /// `min_remaining` equals a per-bit scan of `endurance - wear` over
    /// the healthy mask.
    #[test]
    fn min_remaining_equiv(
        healthy in arb_line(),
        endurance in prop::collection::vec(0u32..50, DATA_BITS),
        wear0 in prop::collection::vec(0u32..50, DATA_BITS),
    ) {
        let wear: Vec<u32> = wear0
            .iter()
            .zip(&endurance)
            .map(|(&w, &e)| w.min(e))
            .collect();
        let got = simd::min_remaining(&wear, &endurance, &healthy.words());
        prop_assert_eq!(
            got,
            simd::scalar::min_remaining(&wear, &endurance, &healthy.words())
        );
        let want = (0..DATA_BITS)
            .filter(|&p| healthy.bit(p))
            .map(|p| endurance[p] - wear[p])
            .min()
            .unwrap_or(u32::MAX);
        prop_assert_eq!(got, want);
    }

    /// Folding any mask sequence through the carry-save accumulator (with
    /// its automatic capacity drains) and landing the remainder equals
    /// calling `mask_accumulate` once per mask. Sequences beyond 63 masks
    /// cross the auto-drain boundary.
    #[test]
    fn mask_accumulator_equiv(
        masks in prop::collection::vec(arb_line(), 1..=150),
        base in prop::collection::vec(0u32..1000, DATA_BITS),
    ) {
        let mut acc_counts = base.clone();
        let mut acc = MaskAccumulator::new();
        for mask in &masks {
            acc.accumulate(&mut acc_counts, &mask.words());
        }
        acc.drain_into(&mut acc_counts);
        prop_assert_eq!(acc.pending(), 0);
        let mut direct = base.clone();
        for mask in &masks {
            simd::mask_accumulate(&mut direct, &mask.words());
        }
        prop_assert_eq!(acc_counts, direct);
    }
}

/// Batches of single-bit lines covering all 512 positions: each lane must
/// report exactly one set bit, in the right window.
#[test]
fn single_bit_lines_adversarial() {
    for chunk in (0..DATA_BITS).collect::<Vec<_>>().chunks(BATCH_LANES) {
        let lines: Vec<Line512> = chunk
            .iter()
            .map(|&pos| Line512::from_fn(|i| i == pos))
            .collect();
        let batch = LineBatch64::from_lines(&lines);
        let counts = simd::batch_popcount(&batch);
        let zero = LineBatch64::from_lines(&vec![Line512::zero(); lines.len()]);
        let dists = simd::batch_hamming(&batch, &zero);
        for (lane, &pos) in chunk.iter().enumerate() {
            assert_eq!(counts[lane], 1, "pos {pos}");
            assert_eq!(dists[lane], 1, "pos {pos}");
            // The window holding the bit sees it; the complement window
            // does not.
            let byte = pos / 8;
            assert_eq!(simd::batch_window_popcount(&batch, byte, 1)[lane], 1);
            assert_eq!(
                simd::batch_window_popcount(&batch, 0, byte)[lane]
                    + simd::batch_window_popcount(&batch, byte + 1, DATA_BYTES - byte - 1)[lane],
                0,
                "bit {pos} leaked outside byte {byte}"
            );
        }
    }
}

/// All-ones and alternating patterns through every batch kernel.
#[test]
fn saturated_patterns_adversarial() {
    let ones = vec![Line512::ones(); BATCH_LANES];
    let alt = vec![Line512::from_words([0xAAAA_AAAA_AAAA_AAAA; 8]); BATCH_LANES];
    let b_ones = LineBatch64::from_lines(&ones);
    let b_alt = LineBatch64::from_lines(&alt);
    assert_eq!(b_ones.live_mask(), u64::MAX);
    assert_eq!(simd::batch_popcount(&b_ones), [512u32; BATCH_LANES]);
    assert_eq!(simd::batch_popcount(&b_alt), [256u32; BATCH_LANES]);
    assert_eq!(simd::batch_hamming(&b_ones, &b_alt), [256u32; BATCH_LANES]);
    assert_eq!(
        simd::batch_window_popcount(&b_ones, 9, 48),
        [48 * 8u32; BATCH_LANES]
    );
    assert_eq!(
        simd::batch_xor(&b_ones, &b_alt).lane(7),
        Line512::from_words([0x5555_5555_5555_5555; 8])
    );
    assert_eq!(simd::batch_and(&b_ones, &b_alt).lane(7), alt[7]);
}

/// Kernels on an empty batch report all-zero without touching dead lanes.
#[test]
fn empty_batch_reports_zero() {
    let empty = LineBatch64::new();
    assert!(empty.is_empty());
    assert_eq!(empty.live_mask(), 0);
    assert_eq!(simd::batch_popcount(&empty), [0u32; BATCH_LANES]);
    assert_eq!(
        simd::batch_window_popcount(&empty, 0, DATA_BYTES),
        [0u32; BATCH_LANES]
    );
    assert_eq!(empty.to_lines(), Vec::<Line512>::new());
}

/// An empty healthy mask yields `u32::MAX` (no cell constrains the bound).
#[test]
fn min_remaining_empty_healthy() {
    let wear = vec![7u32; DATA_BITS];
    let endurance = vec![9u32; DATA_BITS];
    assert_eq!(
        simd::min_remaining(&wear, &endurance, &Line512::zero().words()),
        u32::MAX
    );
    assert_eq!(
        simd::min_remaining(&wear, &endurance, &Line512::ones().words()),
        2
    );
}

/// The accumulator drains itself exactly at capacity: 63 all-ones masks
/// fit, the 64th forces a drain, and no count is lost either side of the
/// boundary.
#[test]
fn mask_accumulator_capacity_boundary() {
    let mut counts = vec![0u32; DATA_BITS];
    let mut acc = MaskAccumulator::new();
    let ones = Line512::ones().words();
    for i in 0..MaskAccumulator::CAPACITY {
        acc.accumulate(&mut counts, &ones);
        assert_eq!(acc.pending(), i + 1);
    }
    // Planes are full; the counters still hold nothing.
    assert_eq!(counts[0], 0);
    acc.accumulate(&mut counts, &ones);
    // The 64th fold drained 63 and kept 1 pending.
    assert_eq!(acc.pending(), 1);
    assert_eq!(counts[0], MaskAccumulator::CAPACITY);
    acc.drain_into(&mut counts);
    assert_eq!(acc.pending(), 0);
    assert!(counts.iter().all(|&c| c == MaskAccumulator::CAPACITY + 1));
    // Draining an empty accumulator is a no-op.
    acc.drain_into(&mut counts);
    assert!(counts.iter().all(|&c| c == MaskAccumulator::CAPACITY + 1));
}

/// The dispatch layer reports whether the vector path is live; either
/// way, dispatch output already matched `scalar` in every property above.
/// This pins the *claim*: without the cargo feature the accelerated path
/// must be reported off.
#[test]
fn accel_claim_is_consistent() {
    if cfg!(not(feature = "simd")) {
        assert!(!simd::accel_active());
    }
}
