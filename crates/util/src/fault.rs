//! Stuck-at fault bookkeeping for a 512-bit memory line.

use crate::line::{Line512, DATA_BITS};
use serde::{Deserialize, Serialize};

/// A single stuck-at fault: a cell position and the value it is stuck at.
///
/// PCM cells fail *stuck-at*: after endurance exhaustion the cell keeps its
/// last value forever (stuck-at-RESET from heater detachment, stuck-at-SET
/// from crystalline degradation). Stuck-at faults are read-detectable, so
/// the memory controller knows both the position and the stuck value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StuckAt {
    /// Bit position within the 512-bit line.
    pub pos: u16,
    /// The value the cell is stuck at.
    pub value: bool,
}

/// The set of stuck-at faults in one 512-bit line, stored as two bitmasks.
///
/// # Examples
///
/// ```
/// use pcm_util::fault::{FaultMap, StuckAt};
///
/// let mut faults = FaultMap::new();
/// faults.insert(StuckAt { pos: 100, value: true });
/// assert_eq!(faults.count(), 1);
/// assert!(faults.is_faulty(100));
/// assert_eq!(faults.stuck_value(100), Some(true));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultMap {
    positions: Line512,
    values: Line512,
}

impl FaultMap {
    /// Creates an empty fault map.
    pub fn new() -> Self {
        FaultMap::default()
    }

    /// Adds a fault. Re-inserting an existing position updates its stuck
    /// value (the physical cell can only be stuck at one value; this keeps
    /// the map consistent with the latest observation).
    ///
    /// # Panics
    ///
    /// Panics if `fault.pos >= 512`.
    pub fn insert(&mut self, fault: StuckAt) {
        let pos = fault.pos as usize;
        assert!(pos < DATA_BITS, "fault position {pos} out of range");
        self.positions.set_bit(pos, true);
        self.values.set_bit(pos, fault.value);
    }

    /// Returns `true` if the cell at `pos` is faulty.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 512`.
    pub fn is_faulty(&self, pos: usize) -> bool {
        self.positions.bit(pos)
    }

    /// Returns the stuck value at `pos`, or `None` if the cell is healthy.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 512`.
    pub fn stuck_value(&self, pos: usize) -> Option<bool> {
        if self.positions.bit(pos) {
            Some(self.values.bit(pos))
        } else {
            None
        }
    }

    /// Total number of faulty cells.
    pub fn count(&self) -> u32 {
        self.positions.count_ones()
    }

    /// Number of faulty cells within a bit range.
    pub fn count_in(&self, range: std::ops::Range<usize>) -> u32 {
        self.positions.count_ones_in(range)
    }

    /// Returns `true` when the line has no faults.
    pub fn is_empty(&self) -> bool {
        self.positions.is_zero()
    }

    /// Iterates over all faults in position order.
    pub fn iter(&self) -> impl Iterator<Item = StuckAt> + '_ {
        self.positions.iter_ones().map(move |pos| StuckAt {
            pos: pos as u16,
            value: self.values.bit(pos),
        })
    }

    /// Returns the faults whose positions fall within the bit range.
    pub fn faults_in(&self, range: std::ops::Range<usize>) -> Vec<StuckAt> {
        self.iter()
            .filter(|f| range.contains(&(f.pos as usize)))
            .collect()
    }

    /// The positions mask (bit set = faulty cell).
    pub fn positions(&self) -> Line512 {
        self.positions
    }

    /// Restricts the map to the positions selected by `mask`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcm_util::fault::{FaultMap, StuckAt};
    /// use pcm_util::Line512;
    ///
    /// let map: FaultMap = [
    ///     StuckAt { pos: 3, value: true },
    ///     StuckAt { pos: 100, value: false },
    /// ].into_iter().collect();
    /// let sub = map.masked(Line512::bit_range_mask(0..64));
    /// assert_eq!(sub.count(), 1);
    /// assert!(sub.is_faulty(3));
    /// ```
    pub fn masked(&self, mask: Line512) -> FaultMap {
        FaultMap {
            positions: self.positions & mask,
            values: self.values & mask,
        }
    }

    /// Forces `line` to respect the stuck cells: every faulty position is
    /// overwritten with its stuck value. This is what physically happens
    /// when data is written to a line with worn-out cells.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcm_util::fault::{FaultMap, StuckAt};
    /// use pcm_util::Line512;
    ///
    /// let mut faults = FaultMap::new();
    /// faults.insert(StuckAt { pos: 0, value: true });
    /// let written = faults.apply(Line512::zero());
    /// assert!(written.bit(0));
    /// ```
    pub fn apply(&self, line: Line512) -> Line512 {
        (line & !self.positions) | (self.values & self.positions)
    }
}

/// How a [`FaultPlan`] chooses fault positions and polarities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum FaultSpec {
    /// The same explicit fault set for every line.
    Exact(Vec<StuckAt>),
    /// Each cell is independently faulty with probability `density`.
    Density { density: f64, sa1_fraction: f64 },
    /// Exactly `count` faults at distinct uniform positions.
    Count { count: u32, sa1_fraction: f64 },
}

/// A deterministic, seeded recipe for stuck-at fault injection.
///
/// The verification harness needs to place faults *by position* (exact
/// regression scenarios), *by density* (endurance-scale realism), and with
/// controlled SA-0/SA-1 *polarity* — and to regenerate the identical fault
/// set for any line from `(seed, line_index)` alone, so a failure report
/// is reproducible from two numbers.
///
/// # Examples
///
/// ```
/// use pcm_util::fault::{FaultPlan, StuckAt};
///
/// // Exact: the same three faults on every line.
/// let plan = FaultPlan::exact(vec![
///     StuckAt { pos: 3, value: true },
///     StuckAt { pos: 100, value: false },
///     StuckAt { pos: 511, value: true },
/// ]);
/// assert_eq!(plan.for_line(0).count(), 3);
///
/// // Seeded: 10 faults per line, 70% stuck-at-1, different per line,
/// // identical across calls.
/// let plan = FaultPlan::with_count(42, 10, 0.7);
/// assert_eq!(plan.for_line(5), plan.for_line(5));
/// assert_ne!(plan.for_line(5), plan.for_line(6));
/// assert_eq!(plan.for_line(5).count(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
}

impl FaultPlan {
    /// A plan injecting exactly these faults into every line.
    ///
    /// # Panics
    ///
    /// Panics if any position is ≥ 512.
    pub fn exact(faults: Vec<StuckAt>) -> Self {
        assert!(
            faults.iter().all(|f| (f.pos as usize) < DATA_BITS),
            "fault positions must be < 512"
        );
        FaultPlan {
            seed: 0,
            spec: FaultSpec::Exact(faults),
        }
    }

    /// A plan where each cell fails independently with probability
    /// `density`, stuck at 1 with probability `sa1_fraction`.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are in `0.0..=1.0`.
    pub fn density(seed: u64, density: f64, sa1_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in 0..=1");
        assert!(
            (0.0..=1.0).contains(&sa1_fraction),
            "sa1_fraction must be in 0..=1"
        );
        FaultPlan {
            seed,
            spec: FaultSpec::Density {
                density,
                sa1_fraction,
            },
        }
    }

    /// A plan with exactly `count` faults per line at distinct seeded
    /// positions, stuck at 1 with probability `sa1_fraction`.
    ///
    /// # Panics
    ///
    /// Panics if `count > 512` or `sa1_fraction` is outside `0.0..=1.0`.
    pub fn with_count(seed: u64, count: u32, sa1_fraction: f64) -> Self {
        assert!(count as usize <= DATA_BITS, "at most 512 faults fit a line");
        assert!(
            (0.0..=1.0).contains(&sa1_fraction),
            "sa1_fraction must be in 0..=1"
        );
        FaultPlan {
            seed,
            spec: FaultSpec::Count {
                count,
                sa1_fraction,
            },
        }
    }

    /// The plan's seed (0 for exact plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Materializes the fault set of one line. Deterministic: the same
    /// `(plan, line)` always yields the same map.
    pub fn for_line(&self, line: u64) -> FaultMap {
        use crate::{child_seed, seeded_rng};
        use rand::RngExt;
        match &self.spec {
            FaultSpec::Exact(faults) => faults.iter().copied().collect(),
            FaultSpec::Density {
                density,
                sa1_fraction,
            } => {
                let mut rng = seeded_rng(child_seed(self.seed, line));
                let mut map = FaultMap::new();
                for pos in 0..DATA_BITS as u16 {
                    if rng.random_bool(*density) {
                        map.insert(StuckAt {
                            pos,
                            value: rng.random_bool(*sa1_fraction),
                        });
                    }
                }
                map
            }
            FaultSpec::Count {
                count,
                sa1_fraction,
            } => {
                let mut rng = seeded_rng(child_seed(self.seed, line));
                // Partial Fisher–Yates over the 512 positions.
                let mut positions: Vec<u16> = (0..DATA_BITS as u16).collect();
                (0..*count as usize)
                    .map(|i| {
                        let j = rng.random_range(i..DATA_BITS);
                        positions.swap(i, j);
                        StuckAt {
                            pos: positions[i],
                            value: rng.random_bool(*sa1_fraction),
                        }
                    })
                    .collect()
            }
        }
    }
}

impl FromIterator<StuckAt> for FaultMap {
    fn from_iter<T: IntoIterator<Item = StuckAt>>(iter: T) -> Self {
        let mut map = FaultMap::new();
        for f in iter {
            map.insert(f);
        }
        map
    }
}

impl Extend<StuckAt> for FaultMap {
    fn extend<T: IntoIterator<Item = StuckAt>>(&mut self, iter: T) {
        for f in iter {
            self.insert(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut m = FaultMap::new();
        assert!(m.is_empty());
        m.insert(StuckAt {
            pos: 0,
            value: false,
        });
        m.insert(StuckAt {
            pos: 511,
            value: true,
        });
        assert_eq!(m.count(), 2);
        assert_eq!(m.stuck_value(0), Some(false));
        assert_eq!(m.stuck_value(511), Some(true));
        assert_eq!(m.stuck_value(5), None);
    }

    #[test]
    fn reinsert_updates_value() {
        let mut m = FaultMap::new();
        m.insert(StuckAt {
            pos: 9,
            value: false,
        });
        m.insert(StuckAt {
            pos: 9,
            value: true,
        });
        assert_eq!(m.count(), 1);
        assert_eq!(m.stuck_value(9), Some(true));
    }

    #[test]
    fn count_in_window() {
        let mut m = FaultMap::new();
        for pos in [10u16, 20, 100, 300] {
            m.insert(StuckAt { pos, value: true });
        }
        assert_eq!(m.count_in(0..64), 2);
        assert_eq!(m.count_in(64..512), 2);
        assert_eq!(m.faults_in(0..64).len(), 2);
    }

    #[test]
    fn apply_forces_stuck_values() {
        let mut m = FaultMap::new();
        m.insert(StuckAt {
            pos: 3,
            value: true,
        });
        m.insert(StuckAt {
            pos: 4,
            value: false,
        });
        let mut data = Line512::zero();
        data.set_bit(4, true);
        let written = m.apply(data);
        assert!(written.bit(3), "stuck-at-1 forces 1");
        assert!(!written.bit(4), "stuck-at-0 forces 0");
        // Healthy bits unchanged.
        assert!(!written.bit(5));
    }

    #[test]
    fn plan_exact_is_line_independent() {
        let plan = FaultPlan::exact(vec![
            StuckAt {
                pos: 1,
                value: true,
            },
            StuckAt {
                pos: 2,
                value: false,
            },
        ]);
        assert_eq!(plan.for_line(0), plan.for_line(99));
        assert_eq!(plan.for_line(0).count(), 2);
        assert_eq!(plan.for_line(0).stuck_value(1), Some(true));
        assert_eq!(plan.for_line(0).stuck_value(2), Some(false));
    }

    #[test]
    fn plan_count_exact_cardinality_and_determinism() {
        let plan = FaultPlan::with_count(7, 33, 0.5);
        for line in 0..8 {
            let m = plan.for_line(line);
            assert_eq!(m.count(), 33);
            assert_eq!(m, plan.for_line(line), "same (plan, line) must reproduce");
        }
        assert_ne!(
            plan.for_line(0),
            plan.for_line(1),
            "lines draw distinct sets"
        );
        assert_ne!(
            plan.for_line(0),
            FaultPlan::with_count(8, 33, 0.5).for_line(0),
            "seed changes the draw"
        );
    }

    #[test]
    fn plan_polarity_extremes() {
        let all_ones = FaultPlan::with_count(3, 64, 1.0).for_line(0);
        assert!(
            all_ones.iter().all(|f| f.value),
            "sa1_fraction=1 -> all stuck-at-1"
        );
        let all_zeros = FaultPlan::with_count(3, 64, 0.0).for_line(0);
        assert!(
            all_zeros.iter().all(|f| !f.value),
            "sa1_fraction=0 -> all stuck-at-0"
        );
    }

    #[test]
    fn plan_density_tracks_probability() {
        let plan = FaultPlan::density(11, 0.1, 0.5);
        let total: u32 = (0..64).map(|l| plan.for_line(l).count()).sum();
        // 64 lines x 512 cells at 10%: expect ~3277, allow wide slack.
        assert!((2000..5000).contains(&total), "got {total} faults");
        assert_eq!(FaultPlan::density(11, 0.0, 0.5).for_line(0).count(), 0);
        assert_eq!(FaultPlan::density(11, 1.0, 0.5).for_line(0).count(), 512);
    }

    #[test]
    fn iter_round_trip() {
        let faults = [
            StuckAt {
                pos: 1,
                value: true,
            },
            StuckAt {
                pos: 64,
                value: false,
            },
            StuckAt {
                pos: 200,
                value: true,
            },
        ];
        let m: FaultMap = faults.iter().copied().collect();
        let out: Vec<StuckAt> = m.iter().collect();
        assert_eq!(out, faults);
    }
}
