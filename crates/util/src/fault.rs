//! Stuck-at fault bookkeeping for a 512-bit memory line.

use crate::line::{Line512, DATA_BITS};
use serde::{Deserialize, Serialize};

/// A single stuck-at fault: a cell position and the value it is stuck at.
///
/// PCM cells fail *stuck-at*: after endurance exhaustion the cell keeps its
/// last value forever (stuck-at-RESET from heater detachment, stuck-at-SET
/// from crystalline degradation). Stuck-at faults are read-detectable, so
/// the memory controller knows both the position and the stuck value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StuckAt {
    /// Bit position within the 512-bit line.
    pub pos: u16,
    /// The value the cell is stuck at.
    pub value: bool,
}

/// The set of stuck-at faults in one 512-bit line, stored as two bitmasks.
///
/// # Examples
///
/// ```
/// use pcm_util::fault::{FaultMap, StuckAt};
///
/// let mut faults = FaultMap::new();
/// faults.insert(StuckAt { pos: 100, value: true });
/// assert_eq!(faults.count(), 1);
/// assert!(faults.is_faulty(100));
/// assert_eq!(faults.stuck_value(100), Some(true));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultMap {
    positions: Line512,
    values: Line512,
}

impl FaultMap {
    /// Creates an empty fault map.
    pub fn new() -> Self {
        FaultMap::default()
    }

    /// Adds a fault. Re-inserting an existing position updates its stuck
    /// value (the physical cell can only be stuck at one value; this keeps
    /// the map consistent with the latest observation).
    ///
    /// # Panics
    ///
    /// Panics if `fault.pos >= 512`.
    pub fn insert(&mut self, fault: StuckAt) {
        let pos = fault.pos as usize;
        assert!(pos < DATA_BITS, "fault position {pos} out of range");
        self.positions.set_bit(pos, true);
        self.values.set_bit(pos, fault.value);
    }

    /// Returns `true` if the cell at `pos` is faulty.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 512`.
    pub fn is_faulty(&self, pos: usize) -> bool {
        self.positions.bit(pos)
    }

    /// Returns the stuck value at `pos`, or `None` if the cell is healthy.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 512`.
    pub fn stuck_value(&self, pos: usize) -> Option<bool> {
        if self.positions.bit(pos) {
            Some(self.values.bit(pos))
        } else {
            None
        }
    }

    /// Total number of faulty cells.
    pub fn count(&self) -> u32 {
        self.positions.count_ones()
    }

    /// Number of faulty cells within a bit range.
    pub fn count_in(&self, range: std::ops::Range<usize>) -> u32 {
        self.positions.count_ones_in(range)
    }

    /// Returns `true` when the line has no faults.
    pub fn is_empty(&self) -> bool {
        self.positions.is_zero()
    }

    /// Iterates over all faults in position order.
    pub fn iter(&self) -> impl Iterator<Item = StuckAt> + '_ {
        self.positions
            .iter_ones()
            .map(move |pos| StuckAt { pos: pos as u16, value: self.values.bit(pos) })
    }

    /// Returns the faults whose positions fall within the bit range.
    pub fn faults_in(&self, range: std::ops::Range<usize>) -> Vec<StuckAt> {
        self.iter().filter(|f| range.contains(&(f.pos as usize))).collect()
    }

    /// The positions mask (bit set = faulty cell).
    pub fn positions(&self) -> Line512 {
        self.positions
    }

    /// Forces `line` to respect the stuck cells: every faulty position is
    /// overwritten with its stuck value. This is what physically happens
    /// when data is written to a line with worn-out cells.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcm_util::fault::{FaultMap, StuckAt};
    /// use pcm_util::Line512;
    ///
    /// let mut faults = FaultMap::new();
    /// faults.insert(StuckAt { pos: 0, value: true });
    /// let written = faults.apply(Line512::zero());
    /// assert!(written.bit(0));
    /// ```
    pub fn apply(&self, line: Line512) -> Line512 {
        (line & !self.positions) | (self.values & self.positions)
    }
}

impl FromIterator<StuckAt> for FaultMap {
    fn from_iter<T: IntoIterator<Item = StuckAt>>(iter: T) -> Self {
        let mut map = FaultMap::new();
        for f in iter {
            map.insert(f);
        }
        map
    }
}

impl Extend<StuckAt> for FaultMap {
    fn extend<T: IntoIterator<Item = StuckAt>>(&mut self, iter: T) {
        for f in iter {
            self.insert(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut m = FaultMap::new();
        assert!(m.is_empty());
        m.insert(StuckAt { pos: 0, value: false });
        m.insert(StuckAt { pos: 511, value: true });
        assert_eq!(m.count(), 2);
        assert_eq!(m.stuck_value(0), Some(false));
        assert_eq!(m.stuck_value(511), Some(true));
        assert_eq!(m.stuck_value(5), None);
    }

    #[test]
    fn reinsert_updates_value() {
        let mut m = FaultMap::new();
        m.insert(StuckAt { pos: 9, value: false });
        m.insert(StuckAt { pos: 9, value: true });
        assert_eq!(m.count(), 1);
        assert_eq!(m.stuck_value(9), Some(true));
    }

    #[test]
    fn count_in_window() {
        let mut m = FaultMap::new();
        for pos in [10u16, 20, 100, 300] {
            m.insert(StuckAt { pos, value: true });
        }
        assert_eq!(m.count_in(0..64), 2);
        assert_eq!(m.count_in(64..512), 2);
        assert_eq!(m.faults_in(0..64).len(), 2);
    }

    #[test]
    fn apply_forces_stuck_values() {
        let mut m = FaultMap::new();
        m.insert(StuckAt { pos: 3, value: true });
        m.insert(StuckAt { pos: 4, value: false });
        let mut data = Line512::zero();
        data.set_bit(4, true);
        let written = m.apply(data);
        assert!(written.bit(3), "stuck-at-1 forces 1");
        assert!(!written.bit(4), "stuck-at-0 forces 0");
        // Healthy bits unchanged.
        assert!(!written.bit(5));
    }

    #[test]
    fn iter_round_trip() {
        let faults = [
            StuckAt { pos: 1, value: true },
            StuckAt { pos: 64, value: false },
            StuckAt { pos: 200, value: true },
        ];
        let m: FaultMap = faults.iter().copied().collect();
        let out: Vec<StuckAt> = m.iter().collect();
        assert_eq!(out, faults);
    }
}
