//! Struct-of-arrays batch kernels with a scalar/vector dual implementation.
//!
//! The hot loops of the simulator are all masked-u64 bit kernels: XOR +
//! popcount (differential writes), windowed popcounts (compression-window
//! accounting), per-chunk popcounts (Flip-N-Write), and "add the bits of a
//! mask to an array of counters" (per-cell wear and flip statistics). One
//! `Line512` at a time these run at a few bits per cycle; transposed into
//! struct-of-arrays batches they vectorize.
//!
//! Two layouts cooperate here:
//!
//! * [`LineBatch64`] — **cross-line SoA**: up to 64 lines transposed into
//!   8 × 64 u64 *lane planes* (`planes[w][lane]` holds word `w` of lane
//!   `lane`). Stateless kernels (diff-write masks, window popcounts, batch
//!   compression screens) walk one plane at a time, so every iteration of
//!   the inner loop touches independent lanes and the compiler can keep
//!   whole cache lines of lanes in flight. Partial batches (1..=64 live
//!   lanes) are handled by *lane masking*: lanes fill a prefix, dead lanes
//!   are zeroed, and `live_mask()` reports the prefix as a bitmask.
//! * **Bit-plane SoA inside one line** — the per-cell wear/count state of
//!   the line-sim is already an array of 512 lanes (`[u32; 512]`); the
//!   kernels [`mask_accumulate`] and [`wear_step`] treat a `Line512` mask
//!   as 512 predicate lanes over those arrays.
//!
//! Every kernel has exactly one semantic, expressed by the reference
//! implementation in [`scalar`]. The `simd` cargo feature adds
//! `#[target_feature]` variants (AVX2 + POPCNT, hand-written lane ops for
//! the counter kernels) that are **byte-identical** in output: popcounts
//! and integer adds are exact, so the dispatch below may pick either path
//! freely. With the feature off, this module compiles to the scalar code
//! with zero dispatch overhead. All `unsafe`, intrinsics, and
//! `cfg(feature = "simd")` logic in the workspace lives in this file — the
//! `simd-confine` audit rule enforces that.

use crate::line::Line512;
use crate::DATA_BITS;

/// Lanes per batch: 64 lines of 64 bytes — one 4 KiB page of data.
pub const BATCH_LANES: usize = 64;

/// u64 words per line.
const WORDS: usize = DATA_BITS / 64;

/// Up to 64 `Line512`s transposed into struct-of-arrays lane planes.
///
/// `planes[w][lane]` is word `w` of the line in `lane`. Lanes fill a
/// prefix (`push` appends); dead lanes stay zero so whole-plane kernels
/// can ignore liveness and still report zero for dead lanes.
///
/// # Examples
///
/// ```
/// use pcm_util::simd::LineBatch64;
/// use pcm_util::Line512;
///
/// let lines = vec![Line512::ones(), Line512::zero()];
/// let batch = LineBatch64::from_lines(&lines);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.live_mask(), 0b11);
/// assert_eq!(batch.lane(0), Line512::ones());
/// assert_eq!(batch.to_lines(), lines);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineBatch64 {
    planes: [[u64; BATCH_LANES]; WORDS],
    live: u64,
}

impl Default for LineBatch64 {
    fn default() -> Self {
        Self::new()
    }
}

impl LineBatch64 {
    /// An empty batch (no live lanes).
    pub fn new() -> Self {
        LineBatch64 {
            planes: [[0u64; BATCH_LANES]; WORDS],
            live: 0,
        }
    }

    /// Transposes a slice of at most [`BATCH_LANES`] lines into a batch.
    ///
    /// # Panics
    ///
    /// Panics if `lines.len() > 64`.
    pub fn from_lines(lines: &[Line512]) -> Self {
        assert!(
            lines.len() <= BATCH_LANES,
            "batch holds at most {BATCH_LANES} lines, got {}",
            lines.len()
        );
        let mut batch = Self::new();
        for line in lines {
            batch.push(line);
        }
        batch
    }

    /// Appends a line into the next free lane and returns its lane index.
    ///
    /// # Panics
    ///
    /// Panics if the batch is full.
    pub fn push(&mut self, line: &Line512) -> usize {
        let lane = self.len();
        assert!(lane < BATCH_LANES, "batch is full");
        let words = line.words();
        for (w, plane) in self.planes.iter_mut().enumerate() {
            plane[lane] = words[w];
        }
        self.live |= 1u64 << lane;
        lane
    }

    /// Empties the batch for reuse, zeroing only the lanes that were
    /// live so dead lanes keep the all-zero invariant the whole-plane
    /// kernels rely on. Much cheaper than a fresh [`LineBatch64::new`]
    /// when a batch is refilled at low occupancy across many rounds
    /// (the lockstep drivers do exactly that).
    #[inline]
    pub fn clear(&mut self) {
        let n = self.len();
        for plane in self.planes.iter_mut() {
            plane[..n].fill(0);
        }
        self.live = 0;
    }

    /// Number of live lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.live.count_ones() as usize
    }

    /// Returns `true` if no lane is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Bitmask of live lanes (always a prefix: `(1 << len) - 1`).
    #[inline]
    pub fn live_mask(&self) -> u64 {
        self.live
    }

    /// One lane plane: word `w` of every lane.
    #[inline]
    pub fn plane(&self, w: usize) -> &[u64; BATCH_LANES] {
        &self.planes[w]
    }

    /// Transposes one lane back out into a `Line512`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not live.
    pub fn lane(&self, lane: usize) -> Line512 {
        assert!(
            lane < BATCH_LANES && self.live >> lane & 1 == 1,
            "lane {lane} is not live"
        );
        let mut words = [0u64; WORDS];
        for (w, plane) in self.planes.iter().enumerate() {
            words[w] = plane[lane];
        }
        Line512::from_words(words)
    }

    /// Transposes every live lane back out, in lane order.
    pub fn to_lines(&self) -> Vec<Line512> {
        (0..self.len()).map(|lane| self.lane(lane)).collect()
    }
}

/// Whether the vector kernel paths are compiled in *and* supported by the
/// CPU at runtime. Always `false` without the `simd` cargo feature.
#[inline]
pub fn accel_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        accel_detected()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn accel_detected() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    // 0 = unprobed, 1 = unsupported, 2 = supported. Probing twice is
    // harmless (same answer), so Relaxed is enough.
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let ok = std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("popcnt");
            STATE.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
            ok
        }
    }
}

/// Popcount of eight u64 words (one `Line512`).
///
/// Never runtime-dispatched: a 64-byte popcount is smaller than the cost
/// of a call into a `#[target_feature]` function (which the compiler may
/// not inline into plain callers), so the SWAR scalar body — which the
/// compiler inlines everywhere — is the fast path in both builds. The
/// dispatched kernels below all amortize the call over ≥ 512 lanes.
#[inline]
pub fn popcount512(words: &[u64; 8]) -> u32 {
    scalar::popcount512(words)
}

/// Adds each set bit of `mask` to the matching counter: for every bit
/// position `p` set in `mask`, `counts[p] += 1`.
///
/// # Panics
///
/// Panics if `counts.len() < 512`.
#[inline]
pub fn mask_accumulate(counts: &mut [u32], mask: &[u64; 8]) {
    assert!(counts.len() >= DATA_BITS, "counter array shorter than line");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if accel_detected() {
        // SAFETY: `accel_detected` verified AVX2+POPCNT support at runtime.
        unsafe { x86::mask_accumulate(counts, mask) };
        return;
    }
    scalar::mask_accumulate(counts, mask);
}

/// One wear step over 512 cell lanes: for every bit `p` set in `program`,
/// `wear[p] += 1`, and `p` is reported in the returned mask if its new
/// wear exceeds `endurance[p]` (the cell dies on this pulse).
///
/// # Panics
///
/// Panics if either slice is shorter than 512.
#[inline]
pub fn wear_step(wear: &mut [u32], endurance: &[u32], program: &[u64; 8]) -> [u64; 8] {
    assert!(wear.len() >= DATA_BITS, "wear array shorter than line");
    assert!(
        endurance.len() >= DATA_BITS,
        "endurance array shorter than line"
    );
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if accel_detected() {
        // SAFETY: `accel_detected` verified AVX2+POPCNT support at runtime.
        return unsafe { x86::wear_step(wear, endurance, program) };
    }
    scalar::wear_step(wear, endurance, program)
}

/// Per-chunk popcounts of a line: `out[c]` = set bits in chunk `c`, where
/// chunks are `chunk_bits` wide. Used by Flip-N-Write.
///
/// # Panics
///
/// Panics unless `chunk_bits` divides 512, is at least 2, and
/// `out.len() >= 512 / chunk_bits`.
#[inline]
pub fn chunk_popcounts(words: &[u64; 8], chunk_bits: usize, out: &mut [u32]) {
    assert!(
        chunk_bits >= 2 && DATA_BITS % chunk_bits == 0,
        "chunk width must divide 512, got {chunk_bits}"
    );
    assert!(
        out.len() >= DATA_BITS / chunk_bits,
        "chunk counter array too short"
    );
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if accel_detected() {
        // SAFETY: `accel_detected` verified AVX2+POPCNT support at runtime.
        unsafe { x86::chunk_popcounts(words, chunk_bits, out) };
        return;
    }
    scalar::chunk_popcounts(words, chunk_bits, out);
}

/// Per-lane popcount of a batch. Dead lanes report 0.
#[inline]
pub fn batch_popcount(batch: &LineBatch64) -> [u32; BATCH_LANES] {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if accel_detected() {
        // SAFETY: `accel_detected` verified AVX2+POPCNT support at runtime.
        return unsafe { x86::batch_popcount(batch) };
    }
    scalar::batch_popcount(batch)
}

/// Per-lane Hamming distance between two batches (the flip count of a
/// differential write of `b` over `a` in every lane).
///
/// # Panics
///
/// Panics if the live-lane masks differ.
#[inline]
pub fn batch_hamming(a: &LineBatch64, b: &LineBatch64) -> [u32; BATCH_LANES] {
    assert_eq!(a.live, b.live, "batches have different live lanes");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if accel_detected() {
        // SAFETY: `accel_detected` verified AVX2+POPCNT support at runtime.
        return unsafe { x86::batch_hamming(a, b) };
    }
    scalar::batch_hamming(a, b)
}

/// Per-lane popcount within the byte window `[offset, offset + len)`.
///
/// # Panics
///
/// Panics if `offset + len > 64`.
#[inline]
pub fn batch_window_popcount(batch: &LineBatch64, offset: usize, len: usize) -> [u32; BATCH_LANES] {
    let mask = Line512::byte_window_mask(offset, len);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if accel_detected() {
        // SAFETY: `accel_detected` verified AVX2+POPCNT support at runtime.
        return unsafe { x86::batch_masked_popcount(batch, &mask.words()) };
    }
    scalar::batch_masked_popcount(batch, &mask.words())
}

/// Lane-wise XOR of two batches.
///
/// # Panics
///
/// Panics if the live-lane masks differ.
pub fn batch_xor(a: &LineBatch64, b: &LineBatch64) -> LineBatch64 {
    assert_eq!(a.live, b.live, "batches have different live lanes");
    let mut out = LineBatch64::new();
    out.live = a.live;
    for w in 0..WORDS {
        for lane in 0..BATCH_LANES {
            out.planes[w][lane] = a.planes[w][lane] ^ b.planes[w][lane];
        }
    }
    out
}

/// Lane-wise AND of two batches.
///
/// # Panics
///
/// Panics if the live-lane masks differ.
pub fn batch_and(a: &LineBatch64, b: &LineBatch64) -> LineBatch64 {
    assert_eq!(a.live, b.live, "batches have different live lanes");
    let mut out = LineBatch64::new();
    out.live = a.live;
    for w in 0..WORDS {
        for lane in 0..BATCH_LANES {
            out.planes[w][lane] = a.planes[w][lane] & b.planes[w][lane];
        }
    }
    out
}

/// Minimum of `endurance[p] - wear[p]` over the cells whose bit is set in
/// `healthy`, or `u32::MAX` when `healthy` is empty.
///
/// Callers must guarantee `wear[p] <= endurance[p]` for every healthy cell
/// (true by construction in the wear model: a cell whose wear exceeds its
/// endurance is a fault and leaves the healthy set); the subtraction still
/// saturates so a violated precondition yields 0, never garbage.
///
/// # Panics
///
/// Panics if either slice is shorter than 512.
#[inline]
pub fn min_remaining(wear: &[u32], endurance: &[u32], healthy: &[u64; 8]) -> u32 {
    assert!(wear.len() >= DATA_BITS, "wear array shorter than line");
    assert!(
        endurance.len() >= DATA_BITS,
        "endurance array shorter than line"
    );
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if accel_detected() {
        // SAFETY: `accel_detected` verified AVX2+POPCNT support at runtime.
        return unsafe { x86::min_remaining(wear, endurance, healthy) };
    }
    scalar::min_remaining(wear, endurance, healthy)
}

/// A carry-save accumulator of 512-bit masks: the bit-plane (within-line
/// struct-of-arrays) half of the batch-kernel design.
///
/// Where [`mask_accumulate`] walks 512 u32 counters per mask, this folds
/// each mask into six bit *planes* (plane `j`, word `w` holds bit `j` of
/// the running per-cell count for cells `64w..64w+64`) with a half-adder
/// carry chain — a handful of u64 ops per mask, independent of how many
/// bits are set. [`Self::drain_into`] materializes the planes into the
/// real counter array; it runs automatically when the 6-bit planes would
/// overflow (every 63 masks), so the amortized cost per mask stays tiny.
/// Pure u64 SWAR: the same code is the fast path in both builds.
#[derive(Debug, Clone, Default)]
pub struct MaskAccumulator {
    planes: [[u64; WORDS]; 6],
    pending: u32,
}

impl MaskAccumulator {
    /// Masks the planes can absorb before [`Self::accumulate`] must drain.
    pub const CAPACITY: u32 = 63;

    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        MaskAccumulator::default()
    }

    /// Number of masks folded in since the last drain.
    pub fn pending(&self) -> u32 {
        self.pending
    }

    /// Folds one mask in, draining into `counts` first if the planes are
    /// full. Equivalent to `mask_accumulate(counts, mask)` once a final
    /// [`Self::drain_into`] lands the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() < 512`.
    #[inline]
    pub fn accumulate(&mut self, counts: &mut [u32], mask: &[u64; 8]) {
        if self.pending == Self::CAPACITY {
            self.drain_into(counts);
        }
        for (w, &m) in mask.iter().enumerate() {
            let mut carry = m;
            for plane in &mut self.planes {
                if carry == 0 {
                    break;
                }
                let sum = plane[w] ^ carry;
                carry &= plane[w];
                plane[w] = sum;
            }
            debug_assert_eq!(carry, 0, "plane overflow despite capacity drain");
        }
        self.pending += 1;
    }

    /// Adds the planes' per-cell counts into `counts` and resets.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() < 512`.
    pub fn drain_into(&mut self, counts: &mut [u32]) {
        assert!(counts.len() >= DATA_BITS, "counter array shorter than line");
        for w in 0..WORDS {
            let mut touched = 0u64;
            for plane in &self.planes {
                touched |= plane[w];
            }
            while touched != 0 {
                let tz = touched.trailing_zeros() as usize;
                touched &= touched - 1;
                let mut v = 0u32;
                for (j, plane) in self.planes.iter().enumerate() {
                    v |= (((plane[w] >> tz) & 1) as u32) << j;
                }
                counts[w * 64 + tz] += v;
            }
            for plane in &mut self.planes {
                plane[w] = 0;
            }
        }
        self.pending = 0;
    }
}

/// Reference implementations: the single source of truth for kernel
/// semantics. The dispatch wrappers above and the vector variants must be
/// byte-identical to these — `crates/util/tests/simd_equiv.rs` holds the
/// differential rig.
pub mod scalar {
    use super::{LineBatch64, BATCH_LANES, WORDS};

    /// See [`super::popcount512`].
    #[inline]
    pub fn popcount512(words: &[u64; 8]) -> u32 {
        words.iter().map(|w| w.count_ones()).sum()
    }

    /// See [`super::mask_accumulate`].
    #[inline]
    pub fn mask_accumulate(counts: &mut [u32], mask: &[u64; 8]) {
        for (w, &m) in mask.iter().enumerate() {
            let mut bits = m;
            while bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                counts[w * 64 + tz] += 1;
            }
        }
    }

    /// See [`super::wear_step`].
    #[inline]
    pub fn wear_step(wear: &mut [u32], endurance: &[u32], program: &[u64; 8]) -> [u64; 8] {
        let mut died = [0u64; 8];
        for (w, &m) in program.iter().enumerate() {
            let mut bits = m;
            while bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let pos = w * 64 + tz;
                wear[pos] += 1;
                if wear[pos] > endurance[pos] {
                    died[w] |= 1u64 << tz;
                }
            }
        }
        died
    }

    /// See [`super::chunk_popcounts`].
    #[inline]
    pub fn chunk_popcounts(words: &[u64; 8], chunk_bits: usize, out: &mut [u32]) {
        if chunk_bits >= 64 {
            let words_per_chunk = chunk_bits / 64;
            for (c, group) in words.chunks_exact(words_per_chunk).enumerate() {
                out[c] = group.iter().map(|w| w.count_ones()).sum();
            }
        } else {
            let chunks_per_word = 64 / chunk_bits;
            let seg = u64::MAX >> (64 - chunk_bits);
            for (w, &word) in words.iter().enumerate() {
                for c in 0..chunks_per_word {
                    out[w * chunks_per_word + c] = (word >> (c * chunk_bits) & seg).count_ones();
                }
            }
        }
    }

    /// See [`super::batch_popcount`].
    #[inline]
    pub fn batch_popcount(batch: &LineBatch64) -> [u32; BATCH_LANES] {
        let mut out = [0u32; BATCH_LANES];
        for w in 0..WORDS {
            let plane = batch.plane(w);
            for (lane, acc) in out.iter_mut().enumerate() {
                *acc += plane[lane].count_ones();
            }
        }
        out
    }

    /// See [`super::batch_hamming`].
    #[inline]
    pub fn batch_hamming(a: &LineBatch64, b: &LineBatch64) -> [u32; BATCH_LANES] {
        let mut out = [0u32; BATCH_LANES];
        for w in 0..WORDS {
            let (pa, pb) = (a.plane(w), b.plane(w));
            for (lane, acc) in out.iter_mut().enumerate() {
                *acc += (pa[lane] ^ pb[lane]).count_ones();
            }
        }
        out
    }

    /// See [`super::min_remaining`].
    #[inline]
    pub fn min_remaining(wear: &[u32], endurance: &[u32], healthy: &[u64; 8]) -> u32 {
        let mut min = u32::MAX;
        for (w, &m) in healthy.iter().enumerate() {
            let mut bits = m;
            while bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let pos = w * 64 + tz;
                min = min.min(endurance[pos].saturating_sub(wear[pos]));
            }
        }
        min
    }

    /// See [`super::batch_window_popcount`] (mask already expanded).
    #[inline]
    pub fn batch_masked_popcount(batch: &LineBatch64, mask: &[u64; 8]) -> [u32; BATCH_LANES] {
        let mut out = [0u32; BATCH_LANES];
        for (w, &mw) in mask.iter().enumerate() {
            if mw == 0 {
                continue;
            }
            let plane = batch.plane(w);
            for (lane, acc) in out.iter_mut().enumerate() {
                *acc += (plane[lane] & mw).count_ones();
            }
        }
        out
    }
}

/// Vector variants. The popcount-shaped kernels reuse the scalar bodies —
/// compiling them with AVX2+POPCNT enabled is what unlocks the hardware
/// popcount and plane-at-a-time vectorization; the counter kernels
/// (`mask_accumulate`, `wear_step`) use hand-written lane ops because
/// their access pattern (expand a predicate bit per u32 lane) defeats the
/// autovectorizer.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use super::{scalar, LineBatch64, BATCH_LANES};

    #[target_feature(enable = "avx2,popcnt")]
    pub(super) fn chunk_popcounts(words: &[u64; 8], chunk_bits: usize, out: &mut [u32]) {
        scalar::chunk_popcounts(words, chunk_bits, out);
    }

    #[target_feature(enable = "avx2,popcnt")]
    pub(super) fn batch_popcount(batch: &LineBatch64) -> [u32; BATCH_LANES] {
        scalar::batch_popcount(batch)
    }

    #[target_feature(enable = "avx2,popcnt")]
    pub(super) fn batch_hamming(a: &LineBatch64, b: &LineBatch64) -> [u32; BATCH_LANES] {
        scalar::batch_hamming(a, b)
    }

    #[target_feature(enable = "avx2,popcnt")]
    pub(super) fn batch_masked_popcount(
        batch: &LineBatch64,
        mask: &[u64; 8],
    ) -> [u32; BATCH_LANES] {
        scalar::batch_masked_popcount(batch, mask)
    }

    /// `counts[p] += bit(mask, p)` over 512 u32 lanes, eight lanes per
    /// step: broadcast the next 8 predicate bits, variable-shift them into
    /// lane position, mask to 0/1 and add.
    #[target_feature(enable = "avx2")]
    pub(super) fn mask_accumulate(counts: &mut [u32], mask: &[u64; 8]) {
        use std::arch::x86_64::*;
        let shifts = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let ones = _mm256_set1_epi32(1);
        for (w, &m) in mask.iter().enumerate() {
            if m == 0 {
                continue;
            }
            for g in 0..8 {
                let byte = (m >> (g * 8) & 0xFF) as i32;
                if byte == 0 {
                    continue;
                }
                let base = w * 64 + g * 8;
                let inc =
                    _mm256_and_si256(_mm256_srlv_epi32(_mm256_set1_epi32(byte), shifts), ones);
                // SAFETY: caller asserted `counts.len() >= 512`; `base` is at
                // most 504, so the unaligned 8-lane load/store stays in
                // bounds. AVX2 is enabled on this function.
                unsafe {
                    let p = counts.as_mut_ptr().add(base) as *mut __m256i;
                    _mm256_storeu_si256(
                        p,
                        _mm256_add_epi32(_mm256_loadu_si256(p as *const _), inc),
                    );
                }
            }
        }
    }

    /// Masked unsigned min-reduction: saturating `endurance - wear` per
    /// u32 lane, lanes outside the healthy predicate forced to `u32::MAX`
    /// (so they never win), eight lanes per step.
    #[target_feature(enable = "avx2")]
    pub(super) fn min_remaining(wear: &[u32], endurance: &[u32], healthy: &[u64; 8]) -> u32 {
        use std::arch::x86_64::*;
        let shifts = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let ones = _mm256_set1_epi32(1);
        let zero = _mm256_setzero_si256();
        let mut min8 = _mm256_set1_epi32(-1);
        for (w, &m) in healthy.iter().enumerate() {
            if m == 0 {
                continue;
            }
            for g in 0..8 {
                let byte = (m >> (g * 8) & 0xFF) as i32;
                if byte == 0 {
                    continue;
                }
                let base = w * 64 + g * 8;
                let lane_on =
                    _mm256_and_si256(_mm256_srlv_epi32(_mm256_set1_epi32(byte), shifts), ones);
                let dead_mask = _mm256_cmpeq_epi32(lane_on, zero);
                // SAFETY: caller asserted both slices are at least 512 long;
                // `base` is at most 504, so the unaligned 8-lane loads stay
                // in bounds. AVX2 is enabled on this function.
                let (e, wv) = unsafe {
                    (
                        _mm256_loadu_si256(endurance.as_ptr().add(base) as *const __m256i),
                        _mm256_loadu_si256(wear.as_ptr().add(base) as *const __m256i),
                    )
                };
                // Saturating unsigned subtract: max(e, w) - w.
                let rem = _mm256_sub_epi32(_mm256_max_epu32(e, wv), wv);
                min8 = _mm256_min_epu32(min8, _mm256_or_si256(rem, dead_mask));
            }
        }
        let mut lanes = [0u32; 8];
        // SAFETY: `lanes` is exactly 32 bytes; unaligned store is allowed.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, min8) };
        lanes.into_iter().min().unwrap_or(u32::MAX)
    }

    /// Lane-sliced wear step: add the predicate bit per u32 lane, then an
    /// unsigned compare (sign-bias trick) against endurance; died lanes
    /// are gathered with movemask and re-masked by the predicate byte so
    /// only freshly programmed cells can report death.
    #[target_feature(enable = "avx2")]
    pub(super) fn wear_step(wear: &mut [u32], endurance: &[u32], program: &[u64; 8]) -> [u64; 8] {
        use std::arch::x86_64::*;
        let shifts = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let ones = _mm256_set1_epi32(1);
        let sign = _mm256_set1_epi32(i32::MIN);
        let mut died = [0u64; 8];
        for (w, &m) in program.iter().enumerate() {
            if m == 0 {
                continue;
            }
            let mut died_w = 0u64;
            for g in 0..8 {
                let byte = (m >> (g * 8) & 0xFF) as i32;
                if byte == 0 {
                    continue;
                }
                let base = w * 64 + g * 8;
                let inc =
                    _mm256_and_si256(_mm256_srlv_epi32(_mm256_set1_epi32(byte), shifts), ones);
                // SAFETY: caller asserted both slices are at least 512 long;
                // `base` is at most 504, so the unaligned 8-lane accesses
                // stay in bounds. AVX2 is enabled on this function.
                let over = unsafe {
                    let wp = wear.as_mut_ptr().add(base) as *mut __m256i;
                    let ep = endurance.as_ptr().add(base) as *const __m256i;
                    let new_wear = _mm256_add_epi32(_mm256_loadu_si256(wp as *const _), inc);
                    _mm256_storeu_si256(wp, new_wear);
                    _mm256_cmpgt_epi32(
                        _mm256_xor_si256(new_wear, sign),
                        _mm256_xor_si256(_mm256_loadu_si256(ep), sign),
                    )
                };
                let lanes = _mm256_movemask_ps(_mm256_castsi256_ps(over)) as u32 as u64;
                died_w |= (lanes & byte as u64) << (g * 8);
            }
            died[w] = died_w;
        }
        died
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use rand::Rng;

    fn random_line(rng: &mut impl Rng) -> Line512 {
        Line512::random(rng)
    }

    #[test]
    fn batch_round_trips_lines() {
        let mut rng = seeded_rng(70);
        for n in [0usize, 1, 2, 31, 64] {
            let lines: Vec<Line512> = (0..n).map(|_| random_line(&mut rng)).collect();
            let batch = LineBatch64::from_lines(&lines);
            assert_eq!(batch.len(), n);
            assert_eq!(batch.to_lines(), lines);
            if n > 0 {
                assert_eq!(batch.live_mask(), u64::MAX >> (64 - n));
            }
        }
    }

    #[test]
    fn dispatch_matches_scalar_reference() {
        let mut rng = seeded_rng(71);
        let lines: Vec<Line512> = (0..64).map(|_| random_line(&mut rng)).collect();
        let batch = LineBatch64::from_lines(&lines);
        assert_eq!(batch_popcount(&batch), scalar::batch_popcount(&batch));
        let words = lines[0].words();
        assert_eq!(popcount512(&words), scalar::popcount512(&words));
        let mut a = [0u32; DATA_BITS];
        let mut b = [0u32; DATA_BITS];
        mask_accumulate(&mut a, &words);
        scalar::mask_accumulate(&mut b, &words);
        assert_eq!(a, b);
    }

    #[test]
    fn wear_step_reports_deaths_only_for_programmed_cells() {
        let mut wear = vec![0u32; DATA_BITS];
        let mut endurance = vec![5u32; DATA_BITS];
        endurance[3] = 0;
        endurance[100] = 0; // over-limit but never programmed
        wear[100] = 7;
        let mut program = [0u64; 8];
        program[0] = 1 << 3 | 1 << 5;
        let died = wear_step(&mut wear, &endurance, &program);
        assert_eq!(died[0], 1 << 3);
        assert_eq!(wear[3], 1);
        assert_eq!(wear[5], 1);
        assert_eq!(wear[100], 7);
    }

    #[test]
    #[should_panic(expected = "batch is full")]
    fn push_rejects_overfull_batch() {
        let mut batch = LineBatch64::from_lines(&[Line512::zero(); 64]);
        batch.push(&Line512::zero());
    }

    #[test]
    fn clear_preserves_the_dead_lane_invariant() {
        // A cleared-then-refilled batch must be indistinguishable from a
        // fresh one, including the all-zero dead lanes the whole-plane
        // kernels rely on — even when the refill is narrower than the
        // previous occupancy.
        let mut rng = seeded_rng(72);
        let wide: Vec<Line512> = (0..64).map(|_| random_line(&mut rng)).collect();
        let narrow: Vec<Line512> = (0..3).map(|_| random_line(&mut rng)).collect();
        let mut reused = LineBatch64::from_lines(&wide);
        reused.clear();
        assert_eq!(reused.len(), 0);
        for line in &narrow {
            reused.push(line);
        }
        let fresh = LineBatch64::from_lines(&narrow);
        assert_eq!(reused.to_lines(), fresh.to_lines());
        assert_eq!(reused.live_mask(), fresh.live_mask());
        assert_eq!(batch_popcount(&reused), batch_popcount(&fresh));
    }

    #[test]
    fn mask_accumulator_matches_direct_accumulation() {
        let mut rng = seeded_rng(72);
        let mut direct = [0u32; DATA_BITS];
        let mut planes = [0u32; DATA_BITS];
        let mut acc = MaskAccumulator::new();
        // 150 masks force two automatic capacity drains along the way.
        for _ in 0..150 {
            let words = random_line(&mut rng).words();
            mask_accumulate(&mut direct, &words);
            acc.accumulate(&mut planes, &words);
        }
        acc.drain_into(&mut planes);
        assert_eq!(planes, direct);
        assert_eq!(acc.pending(), 0);
    }

    #[test]
    fn min_remaining_honors_healthy_mask() {
        let mut wear = vec![0u32; DATA_BITS];
        let mut endurance = vec![100u32; DATA_BITS];
        wear[7] = 95; // remaining 5
        endurance[200] = 2; // remaining 2, but masked out below
        let mut healthy = [u64::MAX; 8];
        healthy[3] &= !(1 << 8); // cell 200 unhealthy
        assert_eq!(min_remaining(&wear, &endurance, &healthy), 5);
        assert_eq!(
            min_remaining(&wear, &endurance, &[0u64; 8]),
            u32::MAX,
            "empty healthy set has no constraint"
        );
        assert_eq!(
            scalar::min_remaining(&wear, &endurance, &healthy),
            min_remaining(&wear, &endurance, &healthy)
        );
    }
}
