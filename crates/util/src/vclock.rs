//! Seeded virtual-time arrival process for open-loop load generation.
//!
//! The serve daemon's traffic generator is open-loop: request arrival
//! times are drawn ahead of time in **virtual bus cycles**, never from a
//! wall clock (the `wallclock` audit rule bans `Instant::now` outside the
//! timing harness for exactly this reason). A fixed seed therefore fixes
//! the entire arrival schedule, so a replay run is byte-identical no
//! matter how fast the host executes it — the reproducibility contract
//! `tests/serve_replay.rs` pins.
//!
//! Inter-arrival gaps are exponential (a Poisson arrival process), the
//! standard open-loop model: the generator never waits for completions, so
//! queueing delay shows up in the virtual-time latency percentiles instead
//! of silently throttling offered load.

use crate::seeded_rng;
use rand::{rngs::StdRng, RngExt};

/// A monotonically increasing virtual clock driven by an exponential
/// inter-arrival process.
///
/// # Examples
///
/// ```
/// use pcm_util::vclock::ArrivalStream;
///
/// let mut a = ArrivalStream::new(7, 100.0);
/// let t0 = a.next_arrival();
/// let t1 = a.next_arrival();
/// assert!(t1 > t0, "virtual time is strictly monotone");
/// // Same seed, same schedule:
/// let mut b = ArrivalStream::new(7, 100.0);
/// assert_eq!(b.next_arrival(), t0);
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    rng: StdRng,
    mean_gap_cycles: f64,
    now: u64,
}

impl ArrivalStream {
    /// Creates an arrival stream with the given seed and mean inter-arrival
    /// gap in bus cycles. The first arrival lands one gap after cycle 0.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_gap_cycles` is finite and positive.
    pub fn new(seed: u64, mean_gap_cycles: f64) -> Self {
        assert!(
            mean_gap_cycles.is_finite() && mean_gap_cycles > 0.0,
            "mean inter-arrival gap must be positive"
        );
        ArrivalStream {
            rng: seeded_rng(seed),
            mean_gap_cycles,
            now: 0,
        }
    }

    /// The current virtual time (cycle of the last arrival; 0 before any).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The configured mean inter-arrival gap in cycles.
    pub fn mean_gap_cycles(&self) -> f64 {
        self.mean_gap_cycles
    }

    /// Advances the clock by one exponential gap and returns the new
    /// arrival's cycle. Gaps are rounded to whole cycles but never to zero,
    /// so virtual time is strictly monotone (ties would make replay order
    /// ambiguous).
    pub fn next_arrival(&mut self) -> u64 {
        let gap = self.sample_gap();
        self.now += gap;
        self.now
    }

    fn sample_gap(&mut self) -> u64 {
        // Inverse-CDF exponential; 1 - u keeps the argument in (0, 1] so
        // ln never sees zero.
        let u: f64 = 1.0 - self.rng.random::<f64>();
        let gap = -self.mean_gap_cycles * u.ln();
        (gap.round() as u64).max(1)
    }

    /// Draws an independent value from the stream's RNG (tenant selection,
    /// payload choice). Folded into the same RNG so one seed fixes the
    /// whole schedule: arrival times *and* everything scheduled at them.
    pub fn draw<T: rand::Random>(&mut self) -> T {
        self.rng.random()
    }

    /// Draws a value in `0..n` from the stream's RNG.
    pub fn draw_index(&mut self, n: u64) -> u64 {
        self.rng.random_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = ArrivalStream::new(42, 250.0);
        let mut b = ArrivalStream::new(42, 250.0);
        let sa: Vec<u64> = (0..1000).map(|_| a.next_arrival()).collect();
        let sb: Vec<u64> = (0..1000).map(|_| b.next_arrival()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ArrivalStream::new(1, 250.0);
        let mut b = ArrivalStream::new(2, 250.0);
        let sa: Vec<u64> = (0..32).map(|_| a.next_arrival()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_arrival()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn time_is_strictly_monotone() {
        let mut a = ArrivalStream::new(9, 1.0); // heavy rounding pressure
        let mut prev = a.now();
        for _ in 0..10_000 {
            let t = a.next_arrival();
            assert!(t > prev, "arrivals must be strictly increasing");
            prev = t;
        }
    }

    #[test]
    fn empirical_mean_gap_tracks_parameter() {
        let mean = 400.0;
        let n = 50_000u64;
        let mut a = ArrivalStream::new(77, mean);
        for _ in 0..n {
            a.next_arrival();
        }
        let empirical = a.now() as f64 / n as f64;
        let err = (empirical - mean).abs() / mean;
        assert!(
            err < 0.02,
            "empirical mean gap {empirical:.1} vs parameter {mean} (err {err:.3})"
        );
    }

    #[test]
    fn draws_share_the_seeded_stream() {
        let mut a = ArrivalStream::new(5, 100.0);
        let mut b = ArrivalStream::new(5, 100.0);
        for _ in 0..100 {
            assert_eq!(a.next_arrival(), b.next_arrival());
            assert_eq!(a.draw_index(15), b.draw_index(15));
        }
    }
}
