//! The 512-bit memory line: the unit of all PCM operations in this workspace.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Number of data bits in a memory line (64 bytes, one LLC block).
pub const DATA_BITS: usize = 512;
/// Number of data bytes in a memory line.
pub const DATA_BYTES: usize = 64;

/// A 512-bit memory line stored as eight little-endian `u64` words.
///
/// `Line512` is used both for *data* (the content of a 64-byte block) and
/// for *masks* (e.g. the set of faulty cell positions, or the set of bits a
/// differential write flips). Bit `i` corresponds to byte `i / 8`, bit
/// `i % 8` within that byte — i.e. the same numbering as
/// `from_bytes(..).bit(i)` reading byte `i/8` of the original slice.
///
/// # Examples
///
/// ```
/// use pcm_util::Line512;
///
/// let a = Line512::from_fn(|i| i % 2 == 0);
/// let b = !a;
/// assert_eq!((a ^ b).count_ones(), 512);
/// assert_eq!((a & b).count_ones(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Line512 {
    words: [u64; 8],
}

impl Line512 {
    /// Returns an all-zero line.
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(pcm_util::Line512::zero().count_ones(), 0);
    /// ```
    pub const fn zero() -> Self {
        Line512 { words: [0; 8] }
    }

    /// Returns an all-ones line.
    pub const fn ones() -> Self {
        Line512 {
            words: [u64::MAX; 8],
        }
    }

    /// Creates a line from its eight little-endian `u64` words.
    pub const fn from_words(words: [u64; 8]) -> Self {
        Line512 { words }
    }

    /// Returns the underlying words.
    pub const fn words(&self) -> [u64; 8] {
        self.words
    }

    /// Creates a line from 64 bytes.
    pub fn from_bytes(bytes: &[u8; DATA_BYTES]) -> Self {
        let mut words = [0u64; 8];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            words[i] = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
        }
        Line512 { words }
    }

    /// Returns the 64 bytes of this line.
    pub fn to_bytes(&self) -> [u8; DATA_BYTES] {
        let mut out = [0u8; DATA_BYTES];
        for (i, w) in self.words.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Builds a line bit-by-bit from a predicate over bit positions `0..512`.
    pub fn from_fn<F: FnMut(usize) -> bool>(mut f: F) -> Self {
        let mut line = Line512::zero();
        for i in 0..DATA_BITS {
            if f(i) {
                line.set_bit(i, true);
            }
        }
        line
    }

    /// Fills a line with uniformly random bits.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = rng.random();
        }
        Line512 { words }
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < DATA_BITS, "bit index {i} out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    #[inline]
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(i < DATA_BITS, "bit index {i} out of range");
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    #[inline]
    pub fn flip_bit(&mut self, i: usize) {
        assert!(i < DATA_BITS, "bit index {i} out of range");
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Returns byte `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[inline]
    pub fn byte(&self, i: usize) -> u8 {
        assert!(i < DATA_BYTES, "byte index {i} out of range");
        (self.words[i / 8] >> ((i % 8) * 8)) as u8
    }

    /// Sets byte `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[inline]
    pub fn set_byte(&mut self, i: usize, value: u8) {
        assert!(i < DATA_BYTES, "byte index {i} out of range");
        let shift = (i % 8) * 8;
        let w = &mut self.words[i / 8];
        *w = (*w & !(0xFFu64 << shift)) | ((value as u64) << shift);
    }

    /// Number of set bits in the line.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        crate::simd::popcount512(&self.words)
    }

    /// Returns `true` if no bit is set.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Hamming distance to `other` — the number of bit flips a differential
    /// write of `other` over `self` performs.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcm_util::Line512;
    /// let a = Line512::zero();
    /// let b = Line512::ones();
    /// assert_eq!(a.hamming_distance(&b), 512);
    /// ```
    #[inline]
    pub fn hamming_distance(&self, other: &Line512) -> u32 {
        (*self ^ *other).count_ones()
    }

    /// Iterates over the positions of set bits in ascending order as an
    /// [`IterOnes`].
    ///
    /// # Examples
    ///
    /// ```
    /// use pcm_util::Line512;
    /// let mut l = Line512::zero();
    /// l.set_bit(5, true);
    /// l.set_bit(300, true);
    /// assert_eq!(l.iter_ones().collect::<Vec<_>>(), vec![5, 300]);
    /// ```
    pub fn iter_ones(&self) -> IterOnes {
        IterOnes {
            line: *self,
            word: 0,
            bits: self.words[0],
        }
    }

    /// Counts set bits whose position lies in `range` (a bit range).
    ///
    /// # Panics
    ///
    /// Panics if `range.end > 512`.
    pub fn count_ones_in(&self, range: std::ops::Range<usize>) -> u32 {
        assert!(range.end <= DATA_BITS, "range end out of bounds");
        if range.start >= range.end {
            return 0;
        }
        let last = range.end - 1;
        let (ws, we) = (range.start / 64, last / 64);
        let head = u64::MAX << (range.start % 64);
        let tail = u64::MAX >> (63 - last % 64);
        if ws == we {
            return (self.words[ws] & head & tail).count_ones();
        }
        let mut count = (self.words[ws] & head).count_ones();
        for w in &self.words[ws + 1..we] {
            count += w.count_ones();
        }
        count + (self.words[we] & tail).count_ones()
    }

    /// Rotates the line left by `n` bytes (byte 0 moves to byte `n`).
    ///
    /// This is the operation intra-line wear-leveling performs: data written
    /// at logical byte offset `o` lands at physical byte `(o + n) % 64`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcm_util::Line512;
    /// let mut l = Line512::zero();
    /// l.set_byte(0, 0xFF);
    /// let r = l.rotate_left_bytes(10);
    /// assert_eq!(r.byte(10), 0xFF);
    /// assert_eq!(r.byte(0), 0);
    /// ```
    pub fn rotate_left_bytes(&self, n: usize) -> Line512 {
        // A byte rotation is a 512-bit rotation by a multiple of 8, so it
        // decomposes into a word rotation plus a sub-word shift with carry.
        let bits = (n % DATA_BYTES) * 8;
        if bits == 0 {
            return *self;
        }
        let (ws, bs) = (bits / 64, bits % 64);
        let mut words = [0u64; 8];
        for (i, w) in words.iter_mut().enumerate() {
            let lo = self.words[(i + 8 - ws) % 8];
            *w = if bs == 0 {
                lo
            } else {
                let carry = self.words[(i + 15 - ws) % 8];
                (lo << bs) | (carry >> (64 - bs))
            };
        }
        Line512 { words }
    }

    /// Rotates the line right by `n` bytes (inverse of
    /// [`rotate_left_bytes`](Self::rotate_left_bytes)).
    pub fn rotate_right_bytes(&self, n: usize) -> Line512 {
        let n = n % DATA_BYTES;
        self.rotate_left_bytes((DATA_BYTES - n) % DATA_BYTES)
    }

    /// Copies `data` into the line starting at byte offset `offset`,
    /// leaving all other bytes untouched, and returns the result.
    ///
    /// This models writing a compressed payload into its compression window.
    ///
    /// # Panics
    ///
    /// Panics if `offset + data.len() > 64`.
    pub fn with_bytes_at(&self, offset: usize, data: &[u8]) -> Line512 {
        assert!(
            offset + data.len() <= DATA_BYTES,
            "window [{offset}, {}) exceeds line",
            offset + data.len()
        );
        let mut bytes = self.to_bytes();
        bytes[offset..offset + data.len()].copy_from_slice(data);
        Line512::from_bytes(&bytes)
    }

    /// Extracts `len` bytes starting at byte offset `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len > 64`.
    pub fn bytes_at(&self, offset: usize, len: usize) -> Vec<u8> {
        assert!(offset + len <= DATA_BYTES, "window out of bounds");
        self.to_bytes()[offset..offset + len].to_vec()
    }

    /// Returns a mask with bits set exactly in the bit range `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range.end > 512`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcm_util::Line512;
    /// let m = Line512::bit_range_mask(60..70);
    /// assert_eq!(m.count_ones(), 10);
    /// assert!(m.bit(60) && m.bit(69));
    /// assert!(!m.bit(59) && !m.bit(70));
    /// ```
    pub fn bit_range_mask(range: std::ops::Range<usize>) -> Line512 {
        assert!(range.end <= DATA_BITS, "range end out of bounds");
        if range.start >= range.end {
            return Line512::zero();
        }
        let last = range.end - 1;
        let (ws, we) = (range.start / 64, last / 64);
        let head = u64::MAX << (range.start % 64);
        let tail = u64::MAX >> (63 - last % 64);
        let mut words = [0u64; 8];
        if ws == we {
            words[ws] = head & tail;
        } else {
            words[ws] = head;
            for w in &mut words[ws + 1..we] {
                *w = u64::MAX;
            }
            words[we] = tail;
        }
        Line512 { words }
    }

    /// Returns a mask with bits set exactly in the byte range
    /// `[offset, offset + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len > 64`.
    pub fn byte_window_mask(offset: usize, len: usize) -> Line512 {
        assert!(offset + len <= DATA_BYTES, "window out of bounds");
        Line512::bit_range_mask(offset * 8..(offset + len) * 8)
    }
}

/// Iterator over set-bit positions of a [`Line512`].
#[derive(Debug, Clone)]
pub struct IterOnes {
    line: Line512,
    word: usize,
    bits: u64,
}

impl Iterator for IterOnes {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + tz);
            }
            self.word += 1;
            if self.word >= 8 {
                return None;
            }
            self.bits = self.line.words[self.word];
        }
    }
}

impl BitXor for Line512 {
    type Output = Line512;
    fn bitxor(self, rhs: Line512) -> Line512 {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(rhs.words.iter()) {
            *a ^= *b;
        }
        Line512 { words }
    }
}

impl BitAnd for Line512 {
    type Output = Line512;
    fn bitand(self, rhs: Line512) -> Line512 {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(rhs.words.iter()) {
            *a &= *b;
        }
        Line512 { words }
    }
}

impl BitOr for Line512 {
    type Output = Line512;
    fn bitor(self, rhs: Line512) -> Line512 {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(rhs.words.iter()) {
            *a |= *b;
        }
        Line512 { words }
    }
}

impl Not for Line512 {
    type Output = Line512;
    fn not(self) -> Line512 {
        let mut words = self.words;
        for w in &mut words {
            *w = !*w;
        }
        Line512 { words }
    }
}

impl fmt::Debug for Line512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line512(")?;
        for w in self.words.iter().rev() {
            write!(f, "{w:016x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Line512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<[u8; DATA_BYTES]> for Line512 {
    fn from(bytes: [u8; DATA_BYTES]) -> Self {
        Line512::from_bytes(&bytes)
    }
}

impl From<Line512> for [u8; DATA_BYTES] {
    fn from(line: Line512) -> Self {
        line.to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        let mut bytes = [0u8; DATA_BYTES];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i * 7 + 3) as u8;
        }
        let line = Line512::from_bytes(&bytes);
        assert_eq!(line.to_bytes(), bytes);
        for (i, b) in bytes.iter().enumerate() {
            assert_eq!(line.byte(i), *b);
        }
    }

    #[test]
    fn bit_and_byte_numbering_agree() {
        let mut bytes = [0u8; DATA_BYTES];
        bytes[5] = 0b0000_0100; // bit 2 of byte 5 => global bit 42
        let line = Line512::from_bytes(&bytes);
        assert!(line.bit(5 * 8 + 2));
        assert_eq!(line.count_ones(), 1);
    }

    #[test]
    fn set_and_flip() {
        let mut l = Line512::zero();
        l.set_bit(511, true);
        assert!(l.bit(511));
        l.flip_bit(511);
        assert!(!l.bit(511));
        l.set_byte(63, 0xF0);
        assert_eq!(l.byte(63), 0xF0);
        assert_eq!(l.count_ones(), 4);
    }

    #[test]
    fn hamming_distance_matches_xor_popcount() {
        let mut rng = crate::seeded_rng(11);
        for _ in 0..32 {
            let a = Line512::random(&mut rng);
            let b = Line512::random(&mut rng);
            assert_eq!(a.hamming_distance(&b), (a ^ b).count_ones());
        }
    }

    #[test]
    fn iter_ones_round_trip() {
        let mut rng = crate::seeded_rng(12);
        let l = Line512::random(&mut rng);
        let rebuilt = {
            let mut out = Line512::zero();
            for i in l.iter_ones() {
                out.set_bit(i, true);
            }
            out
        };
        assert_eq!(l, rebuilt);
    }

    #[test]
    fn count_ones_in_ranges() {
        let l = Line512::ones();
        assert_eq!(l.count_ones_in(0..512), 512);
        assert_eq!(l.count_ones_in(3..67), 64);
        assert_eq!(l.count_ones_in(100..100), 0);
        let mut m = Line512::zero();
        m.set_bit(64, true);
        m.set_bit(63, true);
        assert_eq!(m.count_ones_in(0..64), 1);
        assert_eq!(m.count_ones_in(64..128), 1);
    }

    #[test]
    fn rotation_round_trip() {
        let mut rng = crate::seeded_rng(13);
        let l = Line512::random(&mut rng);
        for n in 0..DATA_BYTES {
            assert_eq!(l.rotate_left_bytes(n).rotate_right_bytes(n), l);
        }
        assert_eq!(l.rotate_left_bytes(64), l);
    }

    #[test]
    fn window_write_and_read() {
        let base = Line512::ones();
        let payload = [0u8, 1, 2, 3];
        let written = base.with_bytes_at(10, &payload);
        assert_eq!(written.bytes_at(10, 4), payload);
        assert_eq!(written.byte(9), 0xFF);
        assert_eq!(written.byte(14), 0xFF);
    }

    #[test]
    fn window_mask_counts() {
        let m = Line512::byte_window_mask(4, 8);
        assert_eq!(m.count_ones(), 64);
        assert!(m.bit(4 * 8));
        assert!(m.bit(12 * 8 - 1));
        assert!(!m.bit(12 * 8));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        Line512::zero().bit(512);
    }

    #[test]
    #[should_panic(expected = "exceeds line")]
    fn window_overflow_panics() {
        Line512::zero().with_bytes_at(60, &[0; 5]);
    }

    #[test]
    fn operators() {
        let mut rng = crate::seeded_rng(14);
        let a = Line512::random(&mut rng);
        assert_eq!(a ^ a, Line512::zero());
        assert_eq!(a & a, a);
        assert_eq!(a | a, a);
        assert_eq!(!(!a), a);
        assert_eq!((a & !a), Line512::zero());
        assert_eq!((a | !a), Line512::ones());
    }
}
