//! Deterministic work-stealing job pool.
//!
//! Every parallel loop in the workspace drains from this pool: lifetime
//! campaigns (one line per job), Monte-Carlo fault injection (one chunk of
//! injections per job), and whole experiments in `pcm-lab run-all`. Workers
//! claim chunks from a shared atomic counter, so a straggler chunk never
//! idles the other cores the way a static `step_by(threads)` stripe does.
//!
//! Determinism contract: job results must depend only on the job index
//! (callers seed per-index via [`crate::child_seed`]), never on which worker
//! ran the job or in which order chunks were claimed. The pool then
//! guarantees the collected output is in index order, so results are
//! byte-identical across thread counts — see `tests/thread_invariance.rs`.
//!
//! Nesting: a job that itself reaches for a pool (an experiment running a
//! campaign under `run-all`) executes that inner loop serially on its
//! worker. The outer pool already owns the machine's parallelism; nesting
//! would only oversubscribe it.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current thread as a pool worker for its lifetime, restoring
/// the previous state on drop (workers can be reused by an outer scope).
struct WorkerGuard {
    prev: bool,
}

impl WorkerGuard {
    fn enter() -> Self {
        WorkerGuard {
            prev: IN_WORKER.with(|c| c.replace(true)),
        }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_WORKER.with(|c| c.set(prev));
    }
}

/// A fixed-width pool of worker threads with atomic-counter chunk claiming.
///
/// The pool holds no OS threads between calls; each map spawns scoped
/// workers that exit when the queue drains. What it does hold is the
/// resolved thread count: `available_parallelism` is consulted exactly once,
/// at construction, so configs that say "0 = auto" cannot re-resolve (and
/// oversubscribe) inside nested calls.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// Creates a pool with `threads` workers; 0 resolves the machine's
    /// available parallelism (once, here — never again per call).
    pub fn new(threads: usize) -> Self {
        let threads = if threads > 0 {
            threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        Pool { threads }
    }

    /// The resolved worker count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True while the current thread is executing a pool job. Inner pool
    /// calls use this to fall back to serial execution instead of nesting.
    pub fn in_worker() -> bool {
        IN_WORKER.with(|c| c.get())
    }

    /// Maps `f` over `0..n`, returning results in index order.
    ///
    /// Chunks of `chunk` consecutive indices are claimed from a shared
    /// counter; tune `chunk` to the job grain (1 for expensive items like
    /// whole line simulations, larger for cheap ones).
    pub fn map_indexed<T, F>(&self, n: usize, chunk: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_indexed_with(n, chunk, || (), |(), i| f(i))
    }

    /// Like [`map_indexed`](Self::map_indexed), with per-worker scratch
    /// state: each worker calls `init` once and reuses the value across
    /// every job it claims. Scratch must be pure buffer space — it carries
    /// no RNG state, so results stay independent of the worker/job mapping.
    pub fn map_indexed_with<S, T, I, F>(&self, n: usize, chunk: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        if n == 0 {
            return Vec::new();
        }
        let nchunks = n.div_ceil(chunk);
        let workers = self.threads.min(nchunks);
        if workers <= 1 || Self::in_worker() {
            let mut scratch = init();
            return (0..n).map(|i| f(&mut scratch, i)).collect();
        }

        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::with_capacity(nchunks));
        let work = {
            let (next, done, init, f) = (&next, &done, &init, &f);
            move || {
                let _guard = WorkerGuard::enter();
                let mut scratch = init();
                let mut local: Vec<(usize, Vec<T>)> = Vec::new();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= nchunks {
                        break;
                    }
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(n);
                    let mut out = Vec::with_capacity(hi - lo);
                    for i in lo..hi {
                        out.push(f(&mut scratch, i));
                    }
                    local.push((c, out));
                }
                if !local.is_empty() {
                    done.lock()
                        .expect("pool results mutex poisoned")
                        .extend(local);
                }
            }
        };
        std::thread::scope(|s| {
            for _ in 1..workers {
                s.spawn(&work);
            }
            // The caller participates in draining the queue; scope exit
            // joins the spawned workers (propagating any panic).
            work();
        });

        let mut chunks = done.into_inner().expect("pool results mutex poisoned");
        chunks.sort_unstable_by_key(|&(c, _)| c);
        let mut out = Vec::with_capacity(n);
        for (_, v) in chunks {
            out.extend(v);
        }
        assert_eq!(out.len(), n, "pool dropped jobs");
        out
    }

    /// Maps `f` over every element of `items` in place, one claim per
    /// element, returning the per-element results in index order.
    ///
    /// This is the mutable-ownership variant the serve engine shards banks
    /// with: each `&mut T` is handed to exactly one worker through a
    /// one-shot cell, so no element is ever shared — there is no
    /// `Arc<Mutex<..>>` around the state, only a transfer of exclusive
    /// borrows (the `serve-ownership` audit rule polices the alternative).
    /// The same determinism contract applies: `f` must depend only on the
    /// element and its index, never on the worker that claimed it.
    pub fn map_each_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 || Self::in_worker() {
            return items
                .iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        // One-shot handoff cells: each holds the exclusive borrow of one
        // element until some worker claims that index and takes it out.
        let cells: Vec<Mutex<Option<&mut T>>> = items
            .iter_mut()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|s| {
            let work = || {
                let _guard = WorkerGuard::enter();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = cells[i]
                        .lock()
                        .expect("pool handoff mutex poisoned")
                        .take()
                        .expect("element claimed twice");
                    local.push((i, f(i, item)));
                }
                if !local.is_empty() {
                    done.lock()
                        .expect("pool results mutex poisoned")
                        .extend(local);
                }
            };
            for _ in 1..workers {
                s.spawn(work);
            }
            work();
        });

        let mut results = done.into_inner().expect("pool results mutex poisoned");
        results.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(results.len(), n, "pool dropped jobs");
        results.into_iter().map(|(_, r)| r).collect()
    }

    /// Runs `f` over `0..n` on the pool while the calling thread consumes
    /// each result **in index order**, as soon as it and all its
    /// predecessors are available. This is the streaming variant used by
    /// `pcm-lab run-all`: experiment `i`'s report is printed the moment
    /// jobs `0..=i` have finished, regardless of completion order.
    pub fn run_ordered<T, F, C>(&self, n: usize, f: F, mut consume: C)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FnMut(usize, T),
    {
        if n == 0 {
            return;
        }
        let workers = self.threads.min(n);
        if workers <= 1 || Self::in_worker() {
            for i in 0..n {
                consume(i, f(i));
            }
            return;
        }

        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
        let ready = Condvar::new();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let _guard = WorkerGuard::enter();
                    loop {
                        let job = next.fetch_add(1, Ordering::Relaxed);
                        if job >= n {
                            break;
                        }
                        let out = f(job);
                        let mut guard = slots.lock().expect("pool slots mutex poisoned");
                        guard[job] = Some(out);
                        ready.notify_all();
                    }
                });
            }
            for i in 0..n {
                // Take the slot under the lock, consume outside it so slow
                // consumers (file writes) never block the producers.
                let out = {
                    let mut guard = slots.lock().expect("pool slots mutex poisoned");
                    loop {
                        match guard[i].take() {
                            Some(out) => break out,
                            None => guard = ready.wait(guard).expect("pool slots mutex poisoned"),
                        }
                    }
                };
                consume(i, out);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 4, 7] {
            for n in [0, 1, 5, 64, 100] {
                for chunk in [1, 3, 16] {
                    let pool = Pool::new(threads);
                    let got = pool.map_indexed(n, chunk, |i| i * i);
                    let want: Vec<usize> = (0..n).map(|i| i * i).collect();
                    assert_eq!(got, want, "threads={threads} n={n} chunk={chunk}");
                }
            }
        }
    }

    #[test]
    fn skewed_costs_stay_deterministic() {
        // Job cost varies by orders of magnitude with index; results must
        // not depend on which worker absorbs the expensive tail.
        let run = |threads: usize| -> Vec<u64> {
            Pool::new(threads).map_indexed(40, 1, |i| {
                let rounds = if i % 10 == 0 { 40_000 } else { 10 };
                let mut acc = i as u64;
                for _ in 0..rounds {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            })
        };
        let want = run(1);
        for threads in [2, 4, 7] {
            assert_eq!(run(threads), want, "threads={threads}");
        }
    }

    #[test]
    fn scratch_is_reused_not_shared() {
        // Each worker gets its own scratch; job results must only depend on
        // the index even though scratch accumulates worker-local history.
        let pool = Pool::new(4);
        let got = pool.map_indexed_with(64, 2, Vec::<usize>::new, |scratch, i| {
            scratch.push(i);
            i + 1
        });
        let want: Vec<usize> = (0..64).map(|i| i + 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn nested_calls_run_serially() {
        let pool = Pool::new(4);
        let nested = pool.map_indexed(8, 1, |i| {
            assert!(Pool::in_worker());
            // The inner map must take the serial path: no worker explosion.
            let inner = Pool::new(4).map_indexed(4, 1, |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(nested, want);
        assert!(
            !Pool::in_worker(),
            "worker flag must not leak to the caller"
        );
    }

    #[test]
    fn map_each_mut_mutates_every_element_exactly_once() {
        for threads in [1, 2, 4, 7] {
            let mut items: Vec<u64> = (0..23).collect();
            let got = Pool::new(threads).map_each_mut(&mut items, |i, item| {
                *item += 100;
                *item + i as u64
            });
            let want_items: Vec<u64> = (0..23).map(|i| i + 100).collect();
            let want: Vec<u64> = (0..23).map(|i| i + 100 + i).collect();
            assert_eq!(items, want_items, "threads={threads}");
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn map_each_mut_is_deterministic_under_skewed_costs() {
        let run = |threads: usize| -> (Vec<u64>, Vec<u64>) {
            let mut items: Vec<u64> = (0..31).collect();
            let out = Pool::new(threads).map_each_mut(&mut items, |i, item| {
                let rounds = if i % 7 == 0 { 40_000 } else { 10 };
                for _ in 0..rounds {
                    *item = item.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                *item
            });
            (items, out)
        };
        let want = run(1);
        for threads in [2, 4, 7] {
            assert_eq!(run(threads), want, "threads={threads}");
        }
    }

    #[test]
    fn run_ordered_streams_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let mut seen = Vec::new();
            pool.run_ordered(23, |i| i * 3, |i, v| seen.push((i, v)));
            let want: Vec<(usize, usize)> = (0..23).map(|i| (i, i * 3)).collect();
            assert_eq!(seen, want, "threads={threads}");
        }
    }

    #[test]
    fn zero_resolves_parallelism_once() {
        let pool = Pool::new(0);
        assert!(pool.threads() >= 1);
        let pool = Pool::new(3);
        assert_eq!(pool.threads(), 3);
    }
}
