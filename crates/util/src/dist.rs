//! Seedable samplers used by the fault model and workload generator.
//!
//! We implement these directly (Box–Muller normal, inverse-CDF Zipf) rather
//! than pulling in `rand_distr`, keeping the dependency set to the vetted
//! offline crates.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A normal (Gaussian) distribution sampler.
///
/// The PCM endurance model draws per-cell write endurance from
/// `Normal(1e7, CoV * 1e7)` (paper: mean 1e7, "variance" 0.15 — read as
/// coefficient of variation, as in the ECP and FREE-p models it cites).
///
/// # Examples
///
/// ```
/// use pcm_util::dist::Normal;
///
/// let n = Normal::new(10.0, 2.0);
/// let mut rng = pcm_util::seeded_rng(1);
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is negative or either parameter is non-finite.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            mean.is_finite() && sd.is_finite(),
            "parameters must be finite"
        );
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        Normal { mean, sd }
    }

    /// Creates a normal distribution from a mean and a coefficient of
    /// variation (`sd = cov * mean`).
    ///
    /// # Panics
    ///
    /// Panics if `cov` is negative.
    pub fn from_cov(mean: f64, cov: f64) -> Self {
        assert!(cov >= 0.0, "CoV must be non-negative");
        Normal::new(mean, cov * mean.abs())
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Draws one sample (Box–Muller transform).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.sd * z
    }

    /// Draws one sample, clamped below at `floor`.
    ///
    /// Endurance values must stay positive; the fault model clamps at a
    /// small positive floor so that extremely unlucky draws still yield a
    /// usable (if short-lived) cell instead of a nonsensical negative one.
    pub fn sample_clamped<R: Rng + ?Sized>(&self, rng: &mut R, floor: f64) -> f64 {
        self.sample(rng).max(floor)
    }
}

/// A Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Rank `k` (0-based) has probability proportional to `1 / (k + 1)^s`.
/// Sampling uses a precomputed CDF and binary search, so construction is
/// `O(n)` and each sample is `O(log n)`.
///
/// Memory-intensive SPEC write streams concentrate on a hot set of blocks;
/// the trace generator uses Zipf-ranked block popularity.
///
/// # Examples
///
/// ```
/// use pcm_util::dist::Zipf;
///
/// let z = Zipf::new(100, 1.0);
/// let mut rng = pcm_util::seeded_rng(2);
/// let k = z.sample(&mut rng);
/// assert!(k < 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// `s == 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the distribution has no ranks (never: construction
    /// forbids it), provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k < self.cdf.len(), "rank out of range");
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use crate::stats::Running;

    #[test]
    fn normal_moments() {
        let n = Normal::new(100.0, 15.0);
        let mut rng = seeded_rng(3);
        let mut r = Running::new();
        for _ in 0..50_000 {
            r.record(n.sample(&mut rng));
        }
        assert!((r.mean() - 100.0).abs() < 0.5, "mean {}", r.mean());
        assert!((r.std_dev() - 15.0).abs() < 0.5, "sd {}", r.std_dev());
    }

    #[test]
    fn normal_from_cov() {
        let n = Normal::from_cov(1e7, 0.15);
        assert_eq!(n.mean(), 1e7);
        assert_eq!(n.sd(), 1.5e6);
    }

    #[test]
    fn normal_clamp_floor() {
        let n = Normal::new(0.0, 1.0);
        let mut rng = seeded_rng(4);
        for _ in 0..1000 {
            assert!(n.sample_clamped(&mut rng, 0.5) >= 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn normal_rejects_negative_sd() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_samples_match_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = seeded_rng(5);
        let mut counts = [0usize; 20];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in 0..20 {
            let emp = counts[k] as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        Zipf::new(0, 1.0);
    }
}
