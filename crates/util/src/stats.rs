//! Small statistics helpers for experiment harnesses.

use serde::{Deserialize, Serialize};

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(pcm_util::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean of a slice of positive values. Returns `0.0` for an empty
/// slice.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geo_mean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Sample standard deviation (n-1 denominator). Returns `0.0` when fewer
/// than two samples are given.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// An empirical cumulative distribution function over `f64` samples.
///
/// # Examples
///
/// ```
/// let cdf = pcm_util::stats::Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_le(2.0), 0.5);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples (sorts them internally).
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "ECDF samples must not be NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` when the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`. Returns `0.0` for an empty ECDF.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `p`-quantile (nearest-rank), with `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the ECDF is empty or `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        let rank = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// A fixed-width histogram over `[min, max)`.
///
/// Samples below `min` clamp into the first bin, samples at or above `max`
/// into the last.
///
/// # Examples
///
/// ```
/// let mut h = pcm_util::stats::Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// assert_eq!(h.counts()[0], 1);
/// assert_eq!(h.counts()[4], 1);
/// assert_eq!(h.total(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[min, max)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `max <= min`.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(max > min, "histogram range must be non-empty");
        Histogram {
            min,
            max,
            counts: vec![0; bins],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.min {
            0
        } else {
            let raw = ((x - self.min) / (self.max - self.min) * bins as f64) as usize;
            raw.min(bins - 1)
        };
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Lower edge of bin `i`.
    pub fn bin_low(&self, i: usize) -> f64 {
        self.min + (self.max - self.min) * i as f64 / self.counts.len() as f64
    }
}

/// A bootstrap confidence interval for a statistic of a sample set.
///
/// Resamples `samples` with replacement `resamples` times, applies `stat`
/// to each resample, and returns the `(lo, hi)` empirical quantiles at
/// `(1 - confidence) / 2` and `1 - (1 - confidence) / 2`.
///
/// # Panics
///
/// Panics if `samples` is empty, `resamples == 0`, or `confidence` is not
/// in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use pcm_util::stats::{bootstrap_ci, mean};
///
/// let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let (lo, hi) = bootstrap_ci(&xs, mean, 0.95, 200, 42);
/// assert!(lo < 49.5 && 49.5 < hi);
/// ```
pub fn bootstrap_ci<F: Fn(&[f64]) -> f64>(
    samples: &[f64],
    stat: F,
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> (f64, f64) {
    assert!(!samples.is_empty(), "bootstrap needs samples");
    assert!(resamples > 0, "need at least one resample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    use rand::RngExt;
    let mut rng = crate::seeded_rng(seed);
    let mut stats: Vec<f64> = (0..resamples)
        .map(|_| {
            let resample: Vec<f64> = (0..samples.len())
                .map(|_| samples[rng.random_range(0..samples.len())])
                .collect();
            stat(&resample)
        })
        .collect();
    stats.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((stats.len() as f64 * alpha) as usize).min(stats.len() - 1);
    let hi_idx = ((stats.len() as f64 * (1.0 - alpha)) as usize).min(stats.len() - 1);
    (stats[lo_idx], stats[hi_idx])
}

/// A running summary of a stream of `f64` samples (count/mean/min/max),
/// using Welford's algorithm for numerically stable variance.
///
/// # Examples
///
/// ```
/// let mut s = pcm_util::stats::Running::new();
/// for x in [1.0, 2.0, 3.0] { s.record(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Running {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0.0 with fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Minimum sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935299395).abs() < 1e-9);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geo_mean_rejects_nonpositive() {
        geo_mean(&[1.0, 0.0]);
    }

    #[test]
    fn ecdf_fractions() {
        let cdf = Ecdf::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(cdf.fraction_le(0.0), 0.0);
        assert_eq!(cdf.fraction_le(3.0), 0.6);
        assert_eq!(cdf.fraction_le(100.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
    }

    #[test]
    fn histogram_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-5.0);
        h.record(15.0);
        h.record(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
        assert_eq!(h.bin_low(5), 5.0);
    }

    #[test]
    fn bootstrap_ci_brackets_the_statistic() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 50) as f64).collect();
        let (lo, hi) = bootstrap_ci(&xs, mean, 0.9, 300, 7);
        let m = mean(&xs);
        assert!(lo <= m && m <= hi, "[{lo}, {hi}] should bracket {m}");
        assert!(hi - lo < 10.0, "interval suspiciously wide: [{lo}, {hi}]");
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn bootstrap_rejects_empty() {
        bootstrap_ci(&[], mean, 0.9, 10, 0);
    }

    #[test]
    fn running_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut r = Running::new();
        for &x in &xs {
            r.record(x);
        }
        assert!((r.mean() - mean(&xs)).abs() < 1e-12);
        assert!((r.std_dev() - std_dev(&xs)).abs() < 1e-12);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 9.0);
    }
}
