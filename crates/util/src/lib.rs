//! Shared substrate for the `collab-pcm` workspace.
//!
//! This crate provides the low-level building blocks that every other crate
//! in the reproduction of *"Exploring the Potential for Collaborative Data
//! Compression and Hard-Error Tolerance in PCM Memories"* (DSN 2017) relies
//! on:
//!
//! * [`Line512`] — a 64-byte (512-bit) memory line, the unit of every
//!   write-back, compression, differential write, and fault-tolerance
//!   operation in the paper.
//! * [`stats`] — small statistics helpers (means, percentiles, empirical
//!   CDFs, histograms) used by the experiment harness.
//! * [`dist`] — seedable samplers (normal, Zipf) used by the fault model and
//!   the synthetic workload generator.
//!
//! # Examples
//!
//! ```
//! use pcm_util::Line512;
//!
//! let mut line = Line512::zero();
//! line.set_bit(3, true);
//! line.set_byte(10, 0xAB);
//! assert_eq!(line.count_ones(), 1 + 5); // 0xAB has five set bits
//! ```

pub mod dist;
pub mod fault;
pub mod line;
pub mod pool;
pub mod simd;
pub mod stats;
pub mod vclock;

pub use fault::{FaultMap, FaultPlan, StuckAt};
pub use line::{Line512, DATA_BITS, DATA_BYTES};
pub use pool::Pool;
pub use simd::{LineBatch64, BATCH_LANES};
pub use vclock::ArrivalStream;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic random number generator from a `u64` seed.
///
/// All simulations in this workspace are reproducible: every stochastic
/// component takes an explicit RNG, and experiment harnesses derive their
/// RNGs from fixed seeds through this function.
///
/// # Examples
///
/// ```
/// use rand::RngExt;
///
/// let mut a = pcm_util::seeded_rng(42);
/// let mut b = pcm_util::seeded_rng(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Used to fan a single experiment seed out to many independent workers
/// (Monte-Carlo shards, per-workload simulations) without correlation.
///
/// # Examples
///
/// ```
/// assert_ne!(pcm_util::child_seed(1, 0), pcm_util::child_seed(1, 1));
/// ```
pub fn child_seed(parent: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer over the combined value: cheap, well-mixed.
    let mut z = parent
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn seeded_rng_is_deterministic() {
        let xs: Vec<u64> = (0..8).map(|_| 0u64).collect();
        let mut r1 = seeded_rng(7);
        let mut r2 = seeded_rng(7);
        let a: Vec<u64> = xs.iter().map(|_| r1.random()).collect();
        let b: Vec<u64> = xs.iter().map(|_| r2.random()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = seeded_rng(1);
        let mut r2 = seeded_rng(2);
        let a: u64 = r1.random();
        let b: u64 = r2.random();
        assert_ne!(a, b);
    }

    #[test]
    fn child_seeds_spread() {
        let s: Vec<u64> = (0..100).map(|i| child_seed(99, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100);
    }
}
