//! `pcm-serve`: the simulator stood up as an online memory-controller
//! daemon.
//!
//! The batch experiments in `pcm-bench` answer the paper's questions in
//! one shot; this crate answers the ROADMAP's "long-lived system" ones.
//! Simulated tenants send 64-byte write-backs over a length-prefixed
//! binary protocol ([`protocol`]); a deterministic tenant→bank map
//! ([`router`]) pins every tenant to one PCM bank; each bank's controller
//! state ([`pcm_core::BankCtl`]) is owned by exactly one shard at a time
//! ([`engine`]), concurrency comes from `pcm_util::Pool`, and live
//! compression/wear/fault counters plus write-latency percentiles stream
//! back out of the [`telemetry`] snapshot endpoint.
//!
//! Time is virtual throughout — requests carry their own arrival cycle,
//! the built-in open-loop [`generator`] draws arrivals from a seeded
//! exponential process, and service/queueing delay comes from the DDR3
//! timing model — so a daemon run is a pure function of `(config, input
//! bytes)` and replays byte-identically at any shard count
//! (`tests/serve_replay.rs` at the workspace root pins this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod engine;
pub mod generator;
pub mod protocol;
pub mod router;
pub mod telemetry;

pub use daemon::{ConnState, Daemon};
pub use engine::{Engine, ScriptedWrite, ServeConfig};
pub use generator::TrafficGen;
pub use protocol::{FrameDecoder, ProtoError, Request};
pub use telemetry::{LatencyHist, Snapshot};
