//! The sharded serve engine: per-bank ownership over `pcm_util::Pool`.
//!
//! A fixed fleet of [`BankCtl`]s — the bank count is part of the
//! configuration, **independent of the shard count** — serves all traffic.
//! Tenants route to banks with [`crate::router::route`]; each bank's
//! controller state is owned by value inside its [`BankShard`] and is only
//! ever touched by whichever worker currently holds the exclusive borrow
//! ([`Pool::map_each_mut`] hands each `&mut BankShard` to exactly one
//! worker). There is no `Arc<Mutex<_>>` anywhere on the serve path — the
//! `serve-ownership` audit rule keeps it that way.
//!
//! Determinism: a request script is partitioned per bank and each bank
//! consumes its subsequence in arrival order, so the final state is a pure
//! function of the script and the bank count. The shard count only decides
//! how many banks progress concurrently — replay runs are byte-identical
//! across shard counts (`tests/serve_replay.rs`).
//!
//! Latency comes from the DDR3-style timing model in `crates/device`: a
//! write occupies its bank for [`TimingParams::write_occupancy_cycles`]
//! starting no earlier than its virtual arrival cycle, so open-loop bursts
//! build real queueing delay that lands in the percentile telemetry.

use crate::router::route;
use crate::telemetry::{BankSnapshot, BankTelemetry, LatencyHist, Snapshot};
use pcm_compress::{compress_best_batch, Method};
use pcm_core::{BankCtl, EccChoice, SystemConfig, SystemKind, WearChoice, WriteError};
use pcm_device::timing::TimingParams;
use pcm_util::simd::LineBatch64;
use pcm_util::{child_seed, Line512, Pool, BATCH_LANES, DATA_BYTES};

/// Serve-engine configuration. One value of this struct plus a request
/// script fully determines every counter the daemon will ever report.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Master seed: bank endurance draws and the traffic generator all
    /// derive from it by index.
    pub seed: u64,
    /// Worker count for the shard pool (0 = available parallelism). Has
    /// **no effect on results**, only on wall-clock speed.
    pub shards: usize,
    /// Bank count. Part of the simulated machine, so changing it changes
    /// results (tenants remap per the router's growth rule).
    pub banks: usize,
    /// Logical lines per bank.
    pub lines_per_bank: u64,
    /// Simulated tenant population.
    pub tenants: u64,
    /// Controller system under test.
    pub system: SystemKind,
    /// Hard-error scheme of the stack under test.
    pub ecc: EccChoice,
    /// Inter-line wear-leveling scheme of the stack under test.
    pub wear: WearChoice,
    /// Mean per-cell endurance for the fault model.
    pub endurance_mean: f64,
    /// Zipf exponent of the tenant popularity mix.
    pub zipf_s: f64,
    /// Mean inter-arrival gap of the open-loop generator, bus cycles.
    pub mean_gap_cycles: f64,
}

impl ServeConfig {
    /// A small deterministic default fleet: 8 banks × 64 lines, 60 tenants
    /// (four times the 15 SPEC profiles), CompWF controller, paper
    /// endurance scaled down so wear telemetry moves within a short run.
    pub fn new(seed: u64) -> Self {
        ServeConfig {
            seed,
            shards: 0,
            banks: 8,
            lines_per_bank: 64,
            tenants: 60,
            system: SystemKind::CompWF,
            ecc: EccChoice::Ecp6,
            wear: WearChoice::StartGap,
            endurance_mean: 1e6,
            zipf_s: 0.99,
            mean_gap_cycles: 40.0,
        }
    }
}

/// One scripted write-back: the unit the generator emits and the replay
/// tests feed back in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedWrite {
    /// Arrival time, virtual bus cycles.
    pub at: u64,
    /// Tenant id.
    pub tenant: u64,
    /// Bank-local logical line index.
    pub line: u64,
    /// Payload.
    pub data: Line512,
}

/// A bank plus everything the serve path tracks about it. Handed out *by
/// value* through `&mut` — never wrapped in shared-ownership containers.
#[derive(Debug)]
pub struct BankShard {
    ctl: BankCtl,
    telem: BankTelemetry,
}

impl BankShard {
    /// The serve-path counters ([`BankTelemetry`]).
    pub fn telemetry(&self) -> &BankTelemetry {
        &self.telem
    }

    /// Books one request's arrival into the queueing/latency telemetry and
    /// returns the request's latency. Shared verbatim by the serial and
    /// batch paths so the two can never drift on timing.
    fn account(&mut self, timing: &TimingParams, w: &ScriptedWrite) -> u64 {
        self.telem.writes += 1;
        // The bank is busy until its previous write finished; queueing
        // delay is the gap between arrival and service start.
        let start = w.at.max(self.telem.free_at);
        let done = start + timing.write_occupancy_cycles();
        self.telem.free_at = done;
        let latency = done - w.at;
        self.telem.latency.record(latency);
        latency
    }

    /// Folds one write outcome into the failure counters — the exact
    /// `WriteError` taxonomy of the serial path, shared with the batch
    /// path.
    fn record_outcome(
        &mut self,
        result: Result<pcm_core::WriteReport, WriteError>,
        latency: u64,
    ) -> Result<u64, WriteError> {
        match result {
            Ok(_) => Ok(latency),
            Err(e) => {
                match e {
                    WriteError::LineDead { .. } => self.telem.write_failures += 1,
                    WriteError::BadAddress => self.telem.bad_addresses += 1,
                }
                Err(e)
            }
        }
    }

    fn apply_write(&mut self, timing: &TimingParams, w: &ScriptedWrite) -> Result<u64, WriteError> {
        let latency = self.account(timing, w);
        let result = self.ctl.write(w.line, w.data);
        self.record_outcome(result, latency)
    }

    /// Serves a run of queued requests in arrival order, compressing each
    /// chunk of up to [`BATCH_LANES`] payloads through one
    /// [`compress_best_batch`] kernel call before the per-request writes
    /// run. Telemetry, latency accounting, and `WriteError` semantics are
    /// shared with [`apply_write`], so the outcome is byte-identical to
    /// serving the requests one at a time (pinned by
    /// `batch_and_serial_paths_agree` and the replay suite).
    // pcm-audit: root(hotpath-alloc) — per-bank batch write path of the serve engine; payloads land in fixed lane planes and stack buffers
    pub(crate) fn apply_batch(&mut self, timing: &TimingParams, reqs: &[&ScriptedWrite]) {
        if !self.ctl.config().kind.compresses() {
            for w in reqs {
                // Outcomes are folded into the shard's own telemetry;
                // per-request results are not needed on the batch path.
                let _ = self.apply_write(timing, w);
            }
            return;
        }
        let mut payloads = [[0u8; DATA_BYTES]; BATCH_LANES];
        let mut methods = [(Method::Uncompressed, 0usize); BATCH_LANES];
        for chunk in reqs.chunks(BATCH_LANES) {
            let mut batch = LineBatch64::new();
            for w in chunk {
                // pcm-audit: allow(hotpath-alloc) — LineBatch64::push transposes into fixed lane planes; no heap involved
                batch.push(&w.data);
            }
            compress_best_batch(
                &batch,
                &mut payloads[..chunk.len()],
                &mut methods[..chunk.len()],
            );
            for (i, w) in chunk.iter().enumerate() {
                let latency = self.account(timing, w);
                let (m, len) = methods[i];
                let result =
                    self.ctl
                        .write_precompressed(w.line, w.data, Some((m, &payloads[i][..len])));
                let _ = self.record_outcome(result, latency);
            }
        }
    }
}

/// The sharded serve engine.
pub struct Engine {
    cfg: ServeConfig,
    banks: Vec<BankShard>,
    pool: Pool,
    timing: TimingParams,
    now: u64,
}

impl Engine {
    /// Builds the bank fleet. Bank `b` draws its endurance from
    /// `child_seed(seed, b)`, so the fleet's initial state depends only on
    /// `(seed, banks, lines_per_bank, system, endurance_mean)` — never on
    /// the shard count.
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(cfg.banks > 0, "need at least one bank");
        assert!(cfg.tenants > 0, "need at least one tenant");
        let sys = SystemConfig::new(cfg.system)
            .with_ecc(cfg.ecc)
            .with_wear(cfg.wear)
            .with_endurance_mean(cfg.endurance_mean);
        let banks = (0..cfg.banks)
            .map(|b| BankShard {
                ctl: BankCtl::new(sys, cfg.lines_per_bank, child_seed(cfg.seed, b as u64)),
                telem: BankTelemetry::default(),
            })
            .collect();
        let pool = Pool::new(cfg.shards);
        Engine {
            cfg,
            banks,
            pool,
            timing: TimingParams::paper(),
            now: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The bank fleet, in bank order.
    pub fn banks(&self) -> &[BankShard] {
        &self.banks
    }

    /// The bank a tenant's requests land on.
    pub fn bank_of(&self, tenant: u64) -> usize {
        route(tenant, self.cfg.banks as u32) as usize
    }

    /// Serves one write immediately (the socket path). Identical effect to
    /// replaying it inside a script: the scripted batch path and this
    /// serial path share [`BankShard::apply_write`].
    ///
    /// # Errors
    ///
    /// [`WriteError::BadAddress`] / [`WriteError::LineDead`] as from
    /// [`BankCtl::write`]; the bank still counts the attempt either way.
    // pcm-audit: root(hotpath-alloc) — per-request demand-write path of the serve engine
    pub fn write(&mut self, w: &ScriptedWrite) -> Result<u64, WriteError> {
        self.now = self.now.max(w.at);
        let bank = self.bank_of(w.tenant);
        let timing = self.timing;
        // pcm-audit: allow(panic-reach) — bank_of reduces modulo banks.len(), so the index is always in range
        self.banks[bank].apply_write(&timing, w)
    }

    /// Reads a tenant's line back.
    ///
    /// # Errors
    ///
    /// As [`BankCtl::read`].
    pub fn read(&mut self, tenant: u64, line: u64) -> Result<Line512, WriteError> {
        let bank = self.bank_of(tenant);
        // pcm-audit: allow(panic-reach) — bank_of reduces modulo banks.len(), so the index is always in range
        let shard = &mut self.banks[bank];
        shard.telem.reads += 1;
        shard.ctl.read(line)
    }

    /// Replays a whole script: partitions it per bank (preserving arrival
    /// order inside each partition) and drives the banks concurrently on
    /// the shard pool. Results are byte-identical to serving the script
    /// one request at a time.
    pub fn run_script(&mut self, script: &[ScriptedWrite]) {
        if script.is_empty() {
            return;
        }
        self.now = self
            .now
            .max(script.iter().map(|w| w.at).max().expect("non-empty"));
        let banks = self.cfg.banks as u32;
        let mut parts: Vec<Vec<&ScriptedWrite>> = (0..banks).map(|_| Vec::new()).collect();
        for w in script {
            parts[route(w.tenant, banks) as usize].push(w);
        }
        let mut work: Vec<(&mut BankShard, Vec<&ScriptedWrite>)> =
            self.banks.iter_mut().zip(parts).collect();
        let timing = self.timing;
        self.pool.map_each_mut(&mut work, |_, (shard, reqs)| {
            shard.apply_batch(&timing, reqs);
        });
    }

    /// Takes a telemetry snapshot: per-bank counters plus the merged
    /// latency percentiles, all in bank order.
    pub fn snapshot(&self) -> Snapshot {
        let mut latency = LatencyHist::new();
        let mut writes = 0u64;
        let mut reads = 0u64;
        let mut demand = 0u64;
        let mut compressed = 0u64;
        let mut faults = 0u64;
        let mut dead = 0u64;
        let banks = self
            .banks
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let stats = shard.ctl.stats();
                latency.absorb(&shard.telem.latency);
                writes += shard.telem.writes;
                reads += shard.telem.reads;
                demand += stats.demand_writes;
                compressed += stats.compressed_writes;
                faults += stats.new_faults;
                dead += shard.ctl.dead_lines() as u64;
                BankSnapshot {
                    bank: i,
                    writes: shard.telem.writes,
                    compressed: stats.compressed_writes,
                    flips: stats.total_flips,
                    faults: stats.new_faults,
                    dead_lines: shard.ctl.dead_lines() as u64,
                    write_failures: shard.telem.write_failures,
                    wear_digest: shard.ctl.wear_digest(),
                }
            })
            .collect();
        let (p50, p99, p999) = latency.summary();
        Snapshot {
            now: self.now,
            writes,
            reads,
            compressed_fraction: if demand == 0 {
                0.0
            } else {
                compressed as f64 / demand as f64
            },
            faults,
            dead_lines: dead,
            p50,
            p99,
            p999,
            banks,
        }
    }

    /// Per-bank wear digests, in bank order — the replay suite's final
    /// equality witness.
    pub fn wear_digests(&self) -> Vec<u64> {
        self.banks.iter().map(|s| s.ctl.wear_digest()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TrafficGen;

    #[test]
    fn batch_and_serial_paths_agree() {
        let cfg = ServeConfig::new(11);
        let script = TrafficGen::new(&cfg).script_until(200_000);
        assert!(script.len() > 100, "generator produced {}", script.len());

        let mut batch = Engine::new(cfg.clone());
        batch.run_script(&script);

        let mut serial = Engine::new(cfg);
        for w in &script {
            let _ = serial.write(w);
        }

        assert_eq!(batch.snapshot(), serial.snapshot());
        assert_eq!(batch.wear_digests(), serial.wear_digests());
    }

    /// Batch-vs-serial equality witness shared by the divergence tests:
    /// runs the script both ways and compares every observable.
    fn assert_batch_matches_serial(cfg: ServeConfig, script: &[ScriptedWrite]) {
        let mut batch = Engine::new(cfg.clone());
        batch.run_script(script);

        let mut serial = Engine::new(cfg);
        for w in script {
            let _ = serial.write(w);
        }

        assert_eq!(batch.snapshot(), serial.snapshot());
        assert_eq!(batch.wear_digests(), serial.wear_digests());
    }

    #[test]
    fn batch_agrees_when_a_line_dies_mid_batch() {
        // Tiny endurance plus a hammered single line: deaths (and CompWF
        // resurrection attempts) land in the middle of 64-request chunks,
        // so the batch path must peel failed writes without disturbing the
        // telemetry of their neighbors.
        let mut cfg = ServeConfig::new(29);
        cfg.banks = 2;
        cfg.lines_per_bank = 4;
        cfg.endurance_mean = 300.0;
        cfg.mean_gap_cycles = 15.0;
        let script = TrafficGen::new(&cfg).script_until(150_000);
        assert!(script.len() > 500, "generator produced {}", script.len());
        let died: u64 = {
            let mut probe = Engine::new(cfg.clone());
            probe.run_script(&script);
            probe
                .banks()
                .iter()
                .map(|s| s.telemetry().write_failures)
                .sum()
        };
        assert!(died > 0, "script must exercise mid-batch deaths");
        assert_batch_matches_serial(cfg, &script);
    }

    #[test]
    fn batch_agrees_with_bad_addresses_interleaved() {
        // Every 7th request targets one-past-the-end: BadAddress outcomes
        // must be counted identically whether the chunk compressed the
        // doomed payload or the serial path rejected it up front.
        let cfg = ServeConfig::new(31);
        let lines = cfg.lines_per_bank;
        let mut script = TrafficGen::new(&cfg).script_until(120_000);
        for (i, w) in script.iter_mut().enumerate() {
            if i % 7 == 3 {
                w.line = lines; // out of range
            }
        }
        let bad: usize = script.iter().filter(|w| w.line == lines).count();
        assert!(bad > 50, "only {bad} bad addresses in the script");
        assert_batch_matches_serial(cfg, &script);
    }

    #[test]
    fn batch_agrees_on_partial_final_chunk() {
        // A single bank receiving a run that is deliberately not a
        // multiple of BATCH_LANES: the trailing partial chunk must behave
        // exactly like full ones.
        let mut cfg = ServeConfig::new(37);
        cfg.banks = 1;
        let mut script = TrafficGen::new(&cfg).script_until(400_000);
        script.truncate(2 * pcm_util::BATCH_LANES + 17);
        assert_eq!(script.len(), 145);
        assert_batch_matches_serial(cfg, &script);
    }

    #[test]
    fn batch_agrees_for_non_compressing_system() {
        // Baseline skips the compression stage entirely; the batch path
        // must fall back to the serial write body per request.
        let mut cfg = ServeConfig::new(41);
        cfg.system = SystemKind::Baseline;
        cfg.endurance_mean = 2_000.0;
        let script = TrafficGen::new(&cfg).script_until(100_000);
        assert_batch_matches_serial(cfg, &script);
    }

    #[test]
    fn queueing_delay_reaches_the_percentiles() {
        // Offered load far above one bank's service rate: tail latency must
        // exceed the bare occupancy.
        let mut cfg = ServeConfig::new(3);
        cfg.banks = 1;
        cfg.mean_gap_cycles = 10.0; // service takes ~68 cycles
        let script = TrafficGen::new(&cfg).script_until(50_000);
        let mut engine = Engine::new(cfg);
        engine.run_script(&script);
        let snap = engine.snapshot();
        let occupancy = TimingParams::paper().write_occupancy_cycles();
        assert!(snap.p50 >= occupancy);
        assert!(
            snap.p999 > 2 * occupancy,
            "p999 {} should show queueing beyond occupancy {}",
            snap.p999,
            occupancy
        );
    }

    #[test]
    fn writes_route_to_the_owning_bank_only() {
        let cfg = ServeConfig::new(5);
        let mut engine = Engine::new(cfg);
        let w = ScriptedWrite {
            at: 0,
            tenant: 12345,
            line: 0,
            data: Line512::ones(),
        };
        let owner = engine.bank_of(12345);
        engine.write(&w).expect("write serves");
        for (i, shard) in engine.banks().iter().enumerate() {
            let expect = if i == owner { 1 } else { 0 };
            assert_eq!(shard.telemetry().writes, expect, "bank {i}");
        }
    }

    #[test]
    fn bad_address_is_counted_not_fatal() {
        let cfg = ServeConfig::new(5);
        let lines = cfg.lines_per_bank;
        let mut engine = Engine::new(cfg);
        let w = ScriptedWrite {
            at: 0,
            tenant: 1,
            line: lines, // one past the end
            data: Line512::ones(),
        };
        assert_eq!(engine.write(&w), Err(WriteError::BadAddress));
        let bank = engine.bank_of(1);
        assert_eq!(engine.banks()[bank].telemetry().bad_addresses, 1);
    }
}
