//! Deterministic tenant→bank routing.
//!
//! The daemon multiplexes tenants onto banks with **strict per-bank
//! ownership**: once a tenant is routed, every one of its requests lands on
//! the same bank, so that bank's controller state can live exclusively
//! inside one shard with no cross-shard sharing. The map must therefore be
//! a pure function of `(tenant, bank_count)` — no registration table, no
//! load feedback — or replay determinism dies.
//!
//! We use Lamping & Veach's *jump consistent hash*. Besides being a total
//! function over the full `u64` tenant space, it gives the one remap rule
//! we document and test: growing the fleet from `k` to `k + 1` banks moves
//! a tenant **only to the new bank** —
//!
//! ```text
//! route(t, k + 1) ∈ { route(t, k),  k }
//! ```
//!
//! so a capacity step relocates `~1/(k+1)` of tenants and never reshuffles
//! traffic between pre-existing banks (`crates/serve/tests/props.rs` pins
//! both properties).

/// Routes a tenant id onto one of `banks` banks (jump consistent hash).
///
/// # Panics
///
/// Panics if `banks == 0`.
///
/// # Examples
///
/// ```
/// use pcm_serve::router::route;
///
/// let bank = route(42, 8);
/// assert!(bank < 8);
/// // Total and pure: the same tenant always routes identically.
/// assert_eq!(bank, route(42, 8));
/// ```
pub fn route(tenant: u64, banks: u32) -> u32 {
    assert!(banks > 0, "cannot route over zero banks");
    let mut key = tenant;
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < banks as i64 {
        b = j;
        key = key.wrapping_mul(2862933555777941757).wrapping_add(1);
        // Upper 33 bits of the LCG state drive the jump length; the +1
        // keeps the divisor nonzero.
        j = ((b + 1) as f64 * ((1u64 << 31) as f64 / ((key >> 33) + 1) as f64)) as i64;
    }
    b as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bank_takes_everything() {
        for t in [0u64, 1, 7, u64::MAX] {
            assert_eq!(route(t, 1), 0);
        }
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let banks = 8u32;
        let mut counts = [0u32; 8];
        for t in 0..8000u64 {
            counts[route(t, banks) as usize] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "bank {b} got {c} of 8000 tenants"
            );
        }
    }

    #[test]
    fn growth_only_moves_tenants_to_the_new_bank() {
        for k in 1..16u32 {
            for t in 0..2000u64 {
                let old = route(t, k);
                let new = route(t, k + 1);
                assert!(
                    new == old || new == k,
                    "tenant {t}: route({k})={old} but route({})={new}",
                    k + 1
                );
            }
        }
    }
}
