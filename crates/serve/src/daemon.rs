//! The connection-facing daemon: frames in, responses out.
//!
//! [`Daemon`] wraps an [`Engine`] behind the wire protocol. The frame
//! handler is a plain in-process function — `handle_request` — so the
//! replay and fuzz suites drive the daemon without a socket; the socket
//! fronts ([`serve_tcp`](Daemon::serve_tcp),
//! [`serve_unix`](Daemon::serve_unix)) are thin read/decode/respond loops
//! over the same handler. Connections are served one at a time, in accept
//! order: the daemon's state evolution is a pure function of the byte
//! streams it is fed, which is what makes online runs replayable at all.

use crate::engine::{Engine, ScriptedWrite, ServeConfig};
use crate::protocol::{encode_response, FrameDecoder, ProtoError, Request, STATUS_OK};
use pcm_core::WriteError;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;

/// Error code for a line index outside the bank (see the protocol table).
pub(crate) const ERR_BAD_ADDRESS: u8 = 6;
/// Error code for an uncorrectable line failure.
pub(crate) const ERR_LINE_DEAD: u8 = 7;

/// What to do with the connection after handling a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Keep reading frames.
    Open,
    /// Stop: clean shutdown or fatal protocol error.
    Closed,
}

/// The protocol-facing daemon.
pub struct Daemon {
    engine: Engine,
    shutdown: bool,
}

impl Daemon {
    /// Builds a daemon over a fresh engine.
    pub fn new(cfg: ServeConfig) -> Self {
        Daemon {
            engine: Engine::new(cfg),
            shutdown: false,
        }
    }

    /// The engine (telemetry, digests).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access for script replay (`pcm-serve --replay`).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// True once a SHUTDOWN frame has been served.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Serves one parsed request, returning the encoded response frame and
    /// the resulting connection state.
    pub fn handle_request(&mut self, req: &Request) -> (Vec<u8>, ConnState) {
        match req {
            Request::Write {
                at,
                tenant,
                line,
                data,
            } => {
                let w = ScriptedWrite {
                    at: *at,
                    tenant: *tenant,
                    line: *line,
                    data: *data,
                };
                match self.engine.write(&w) {
                    Ok(latency) => (
                        encode_response(STATUS_OK, &latency.to_le_bytes()),
                        ConnState::Open,
                    ),
                    Err(e) => (encode_response(write_error_code(&e), &[]), ConnState::Open),
                }
            }
            Request::Read { tenant, line } => match self.engine.read(*tenant, *line) {
                Ok(data) => (
                    encode_response(STATUS_OK, &data.to_bytes()),
                    ConnState::Open,
                ),
                Err(e) => (encode_response(write_error_code(&e), &[]), ConnState::Open),
            },
            Request::Telemetry => (
                encode_response(STATUS_OK, self.engine.snapshot().render().as_bytes()),
                ConnState::Open,
            ),
            Request::Shutdown => {
                self.shutdown = true;
                (encode_response(STATUS_OK, &[]), ConnState::Closed)
            }
        }
    }

    /// Serves a protocol error, returning its response frame and whether
    /// the connection survives.
    pub(crate) fn handle_error(&mut self, err: &ProtoError) -> (Vec<u8>, ConnState) {
        let state = if err.is_fatal() {
            ConnState::Closed
        } else {
            ConnState::Open
        };
        (encode_response(err.code(), &[]), state)
    }

    /// Feeds raw bytes through a connection's decoder, appending every
    /// response frame to `out`. Returns the connection state after
    /// consuming all complete frames.
    pub fn handle_bytes(
        &mut self,
        decoder: &mut FrameDecoder,
        bytes: &[u8],
        out: &mut Vec<u8>,
    ) -> ConnState {
        decoder.push(bytes);
        while let Some(result) = decoder.next_frame() {
            let (resp, state) = match result {
                Ok(req) => self.handle_request(&req),
                Err(e) => self.handle_error(&e),
            };
            out.extend_from_slice(&resp);
            if state == ConnState::Closed {
                return ConnState::Closed;
            }
        }
        ConnState::Open
    }

    /// Serves one byte stream (socket connection) to completion.
    // pcm-audit: root(panic-reach) — a malformed or adversarial frame must produce an error response, never a panic
    fn serve_stream<S: Read + Write>(&mut self, stream: &mut S) -> std::io::Result<()> {
        let mut decoder = FrameDecoder::new();
        let mut buf = [0u8; 4096];
        loop {
            let n = stream.read(&mut buf)?;
            if n == 0 {
                // End of stream: a partial frame left behind is a
                // truncation — answer it so the client knows.
                if decoder.finish().is_err() {
                    let (resp, _) = self.handle_error(&ProtoError::Truncated);
                    stream.write_all(&resp)?;
                }
                return Ok(());
            }
            let mut out = Vec::new();
            // pcm-audit: allow(panic-reach) — Read::read returns n <= buf.len() by contract
            let state = self.handle_bytes(&mut decoder, &buf[..n], &mut out);
            stream.write_all(&out)?;
            if state == ConnState::Closed {
                return Ok(());
            }
        }
    }

    /// Accept loop over TCP: serves connections in accept order until a
    /// SHUTDOWN frame arrives.
    ///
    /// # Errors
    ///
    /// Propagates socket I/O errors.
    pub fn serve_tcp(&mut self, listener: &TcpListener) -> std::io::Result<()> {
        while !self.shutdown {
            let (mut stream, _) = listener.accept()?;
            self.serve_stream(&mut stream)?;
        }
        Ok(())
    }

    /// Accept loop over a Unix socket, same contract as
    /// [`serve_tcp`](Self::serve_tcp).
    ///
    /// # Errors
    ///
    /// Propagates socket I/O errors.
    pub fn serve_unix(&mut self, listener: &UnixListener) -> std::io::Result<()> {
        while !self.shutdown {
            let (mut stream, _) = listener.accept()?;
            self.serve_stream(&mut stream)?;
        }
        Ok(())
    }
}

fn write_error_code(e: &WriteError) -> u8 {
    match e {
        WriteError::BadAddress => ERR_BAD_ADDRESS,
        WriteError::LineDead { .. } => ERR_LINE_DEAD,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{decode_response, encode_shutdown, encode_telemetry, encode_write};
    use pcm_util::Line512;

    fn drive(daemon: &mut Daemon, wire: &[u8]) -> Vec<(u8, Vec<u8>)> {
        let mut decoder = FrameDecoder::new();
        let mut out = Vec::new();
        daemon.handle_bytes(&mut decoder, wire, &mut out);
        let mut responses = Vec::new();
        let mut rest = &out[..];
        while let Some((status, body, used)) = decode_response(rest) {
            responses.push((status, body.to_vec()));
            rest = &rest[used..];
        }
        assert!(rest.is_empty(), "response stream is whole frames");
        responses
    }

    #[test]
    fn write_then_telemetry_over_the_wire() {
        let mut daemon = Daemon::new(ServeConfig::new(21));
        let mut wire = encode_write(100, 3, 5, &Line512::ones());
        wire.extend(encode_telemetry());
        let responses = drive(&mut daemon, &wire);
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].0, STATUS_OK);
        let latency = u64::from_le_bytes(responses[0].1.as_slice().try_into().expect("8 bytes"));
        assert!(latency >= 68, "latency {latency} covers occupancy");
        assert_eq!(responses[1].0, STATUS_OK);
        let text = String::from_utf8(responses[1].1.clone()).expect("utf8 telemetry");
        assert!(text.contains("writes 1"));
    }

    #[test]
    fn shutdown_closes_and_sets_flag() {
        let mut daemon = Daemon::new(ServeConfig::new(21));
        let mut decoder = FrameDecoder::new();
        let mut out = Vec::new();
        let state = daemon.handle_bytes(&mut decoder, &encode_shutdown(), &mut out);
        assert_eq!(state, ConnState::Closed);
        assert!(daemon.shutdown_requested());
    }

    #[test]
    fn tcp_round_trip() {
        use std::net::TcpStream;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let mut daemon = Daemon::new(ServeConfig::new(8));
            daemon.serve_tcp(&listener).expect("serve");
            daemon.engine().snapshot()
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut wire = encode_write(50, 1, 2, &Line512::ones());
        wire.extend(encode_shutdown());
        stream.write_all(&wire).expect("send");
        let mut got = Vec::new();
        stream.read_to_end(&mut got).expect("responses");
        let (status, _, used) = decode_response(&got).expect("write response");
        assert_eq!(status, STATUS_OK);
        let (status, _, _) = decode_response(&got[used..]).expect("shutdown ack");
        assert_eq!(status, STATUS_OK);
        let snap = server.join().expect("server thread");
        assert_eq!(snap.writes, 1);
    }
}
