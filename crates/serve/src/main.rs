//! `pcm-serve` — the online memory-controller daemon.
//!
//! Batch replay mode (default): generate `--duration` virtual cycles of
//! open-loop traffic from the built-in zipfian generator, serve it on the
//! shard pool, print the telemetry snapshot and per-bank wear digests, and
//! exit. For a fixed `--seed` the printed bytes are identical for every
//! `--shards` value and every repetition — the property
//! `tests/serve_replay.rs` enforces.
//!
//! Online mode (`--listen ADDR` / `--unix PATH`): after the batch phase
//! (if any), accept connections and serve the wire protocol until a
//! SHUTDOWN frame arrives.

use pcm_core::StackSpec;
use pcm_serve::{Daemon, ServeConfig, TrafficGen};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;

const USAGE: &str = "pcm-serve [--seed N] [--shards K] [--duration CYCLES] \
[--banks B] [--lines L] [--tenants T] [--mean-gap CYCLES] \
[--stack KIND[/ECC[/WEAR]]] [--listen ADDR] [--unix PATH]";

struct Cli {
    cfg: ServeConfig,
    duration: u64,
    listen: Option<String>,
    unix: Option<String>,
}

fn parse_args<I: Iterator<Item = String>>(mut it: I) -> Result<Cli, String> {
    let mut cli = Cli {
        cfg: ServeConfig::new(2017),
        duration: 2_000_000,
        listen: None,
        unix: None,
    };
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--seed" => cli.cfg.seed = num(&value("--seed")?, "--seed")?,
            "--shards" => cli.cfg.shards = num(&value("--shards")?, "--shards")? as usize,
            "--duration" => cli.duration = num(&value("--duration")?, "--duration")?,
            "--banks" => {
                cli.cfg.banks = num(&value("--banks")?, "--banks")? as usize;
                if cli.cfg.banks == 0 {
                    return Err("--banks must be at least 1".into());
                }
            }
            "--lines" => {
                cli.cfg.lines_per_bank = num(&value("--lines")?, "--lines")?;
                if cli.cfg.lines_per_bank < 2 {
                    return Err("--lines must be at least 2".into());
                }
            }
            "--tenants" => {
                cli.cfg.tenants = num(&value("--tenants")?, "--tenants")?;
                if cli.cfg.tenants == 0 {
                    return Err("--tenants must be at least 1".into());
                }
            }
            "--mean-gap" => {
                let v = num(&value("--mean-gap")?, "--mean-gap")?;
                if v == 0 {
                    return Err("--mean-gap must be positive".into());
                }
                cli.cfg.mean_gap_cycles = v as f64;
            }
            "--stack" => {
                // Any registry stack, e.g. `compwf/coset/wolfram`; the
                // default stack (compwf/ecp6/startgap) keeps replay
                // telemetry identical to pre-registry builds.
                let spec: StackSpec = value("--stack")?.parse()?;
                cli.cfg.system = spec.kind;
                cli.cfg.ecc = spec.ecc;
                cli.cfg.wear = spec.wear;
            }
            "--listen" => cli.listen = Some(value("--listen")?),
            "--unix" => cli.unix = Some(value("--unix")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(cli)
}

fn num(v: &str, flag: &str) -> Result<u64, String> {
    v.parse().map_err(|_| format!("{flag} needs an integer"))
}

fn main() {
    let cli = parse_args(std::env::args().skip(1)).unwrap_or_else(|msg| {
        let code = if msg.is_empty() {
            0
        } else {
            eprintln!("error: {msg}");
            2
        };
        eprintln!("usage: {USAGE}");
        std::process::exit(code);
    });

    let mut daemon = Daemon::new(cli.cfg.clone());
    if cli.duration > 0 {
        let script = TrafficGen::new(&cli.cfg).script_until(cli.duration);
        daemon.engine_mut().run_script(&script);
        print!("{}", daemon.engine().snapshot().render());
        let digests: Vec<String> = daemon
            .engine()
            .wear_digests()
            .iter()
            .map(|d| format!("{d:016x}"))
            .collect();
        println!("wear_digests {}", digests.join(" "));
    }

    if let Some(path) = &cli.unix {
        // A stale socket file from a previous run would make bind fail.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path).unwrap_or_else(|e| {
            eprintln!("error: cannot bind unix socket {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("pcm-serve listening on unix socket {path}");
        if let Err(e) = daemon.serve_unix(&listener) {
            eprintln!("error: unix serve loop failed: {e}");
            std::process::exit(1);
        }
        let _ = std::fs::remove_file(path);
    } else if let Some(addr) = &cli.listen {
        let listener = TcpListener::bind(addr).unwrap_or_else(|e| {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        });
        let local = listener.local_addr().expect("bound socket has an address");
        eprintln!("pcm-serve listening on {local}");
        if let Err(e) = daemon.serve_tcp(&listener) {
            eprintln!("error: tcp serve loop failed: {e}");
            std::process::exit(1);
        }
    }
}
