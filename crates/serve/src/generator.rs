//! Built-in open-loop traffic generator.
//!
//! Tenants are ranked by a Zipf popularity mix (tenant 0 hottest) and each
//! tenant replays write-back content from one of the paper's 15 SPEC
//! workload profiles (`tenant % 15` in Table III order), so the offered
//! stream exercises the same compressibility spectrum as the batch
//! experiments. Arrival times come from a seeded exponential process in
//! virtual bus cycles ([`pcm_util::ArrivalStream`]) — the generator is
//! open-loop: it never waits for the engine, so overload shows up as
//! queueing delay in the latency percentiles rather than as silently
//! reduced throughput.
//!
//! Everything derives from the [`ServeConfig`] seed by fixed child
//! indices; the emitted script is a pure function of the config and is
//! generated identically regardless of shard count.

use crate::engine::{ScriptedWrite, ServeConfig};
use pcm_trace::profile::ALL_APPS;
use pcm_trace::stream::BlockStream;
use pcm_util::dist::Zipf;
use pcm_util::{child_seed, seeded_rng, ArrivalStream};
use rand::rngs::StdRng;

/// Child-seed lanes off the master seed. Keep these stable: changing them
/// changes every replay digest.
const LANE_ARRIVALS: u64 = 1;
const LANE_CHOICES: u64 = 2;
const LANE_TENANT_BASE: u64 = 1000;

/// The seeded open-loop request source.
#[derive(Debug)]
pub struct TrafficGen {
    arrivals: ArrivalStream,
    choices: StdRng,
    tenant_zipf: Zipf,
    addr_zipf: Zipf,
    streams: Vec<BlockStream>,
    lines_per_bank: u64,
    seed: u64,
}

impl TrafficGen {
    /// Builds a generator for the given serve configuration.
    pub fn new(cfg: &ServeConfig) -> Self {
        let streams = (0..cfg.tenants)
            .map(|t| {
                let app = ALL_APPS[(t % ALL_APPS.len() as u64) as usize];
                BlockStream::new(app.profile(), child_seed(cfg.seed, LANE_TENANT_BASE + t))
            })
            .collect();
        TrafficGen {
            arrivals: ArrivalStream::new(child_seed(cfg.seed, LANE_ARRIVALS), cfg.mean_gap_cycles),
            choices: seeded_rng(child_seed(cfg.seed, LANE_CHOICES)),
            tenant_zipf: Zipf::new(cfg.tenants as usize, cfg.zipf_s),
            // Addresses inside a tenant's region follow a mild Zipf of
            // their own: hot lines wear faster, which is what the wear
            // telemetry is there to show.
            addr_zipf: Zipf::new(cfg.lines_per_bank as usize, 0.8),
            streams,
            lines_per_bank: cfg.lines_per_bank,
            seed: cfg.seed,
        }
    }

    /// Emits the next write-back.
    pub fn next_write(&mut self) -> ScriptedWrite {
        let at = self.arrivals.next_arrival();
        let tenant = self.tenant_zipf.sample(&mut self.choices) as u64;
        // Each tenant gets its own deterministic offset into the bank's
        // line space, so co-located tenants overlap only incidentally.
        let base = child_seed(self.seed, tenant) % self.lines_per_bank;
        let rank = self.addr_zipf.sample(&mut self.choices) as u64;
        let line = (base + rank) % self.lines_per_bank;
        let data = self.streams[tenant as usize].next_data();
        ScriptedWrite {
            at,
            tenant,
            line,
            data,
        }
    }

    /// Emits every write arriving at or before `end_cycle`.
    pub fn script_until(&mut self, end_cycle: u64) -> Vec<ScriptedWrite> {
        let mut script = Vec::new();
        loop {
            let w = self.next_write();
            if w.at > end_cycle {
                return script;
            }
            script.push(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_config_same_script() {
        let cfg = ServeConfig::new(99);
        let a = TrafficGen::new(&cfg).script_until(100_000);
        let b = TrafficGen::new(&cfg).script_until(100_000);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn shard_count_does_not_reach_the_generator() {
        let mut a_cfg = ServeConfig::new(4);
        let mut b_cfg = ServeConfig::new(4);
        a_cfg.shards = 1;
        b_cfg.shards = 7;
        let a = TrafficGen::new(&a_cfg).script_until(50_000);
        let b = TrafficGen::new(&b_cfg).script_until(50_000);
        assert_eq!(a, b);
    }

    #[test]
    fn script_respects_the_horizon_and_order() {
        let cfg = ServeConfig::new(7);
        let script = TrafficGen::new(&cfg).script_until(80_000);
        assert!(script.windows(2).all(|w| w[0].at < w[1].at));
        assert!(script.last().expect("non-empty").at <= 80_000);
    }

    #[test]
    fn lines_stay_in_range() {
        let cfg = ServeConfig::new(13);
        for w in TrafficGen::new(&cfg).script_until(100_000) {
            assert!(w.line < cfg.lines_per_bank);
            assert!(w.tenant < cfg.tenants);
        }
    }
}
