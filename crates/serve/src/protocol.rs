//! Length-prefixed binary wire protocol.
//!
//! Every frame, in both directions, is a little-endian `u32` payload
//! length followed by that many payload bytes. Request payloads start with
//! a one-byte opcode; response payloads start with a one-byte status code
//! (`0` = ok, else an error code from the table below).
//!
//! ## Requests
//!
//! | opcode | name      | body                                             |
//! |-------:|-----------|--------------------------------------------------|
//! | `0x01` | WRITE     | `at: u64`, `tenant: u64`, `line: u64`, 64B data  |
//! | `0x02` | READ      | `tenant: u64`, `line: u64`                       |
//! | `0x03` | TELEMETRY | empty — response body is the rendered snapshot   |
//! | `0x04` | SHUTDOWN  | empty — daemon acks, then closes                 |
//!
//! `at` is the request's arrival time in **virtual bus cycles**; clients
//! (the built-in generator, replay scripts) timestamp their own load so
//! the daemon never consults a wall clock.
//!
//! ## Error codes (golden table — `tests/protocol_fuzz.rs` pins it)
//!
//! | code | name          | meaning                                  | connection |
//! |-----:|---------------|------------------------------------------|------------|
//! | 1    | `TRUNCATED`   | stream ended inside a frame              | closed     |
//! | 2    | `OVERSIZE`    | declared length > [`MAX_FRAME`]          | closed     |
//! | 3    | `EMPTY`       | declared length 0 (no opcode)            | open       |
//! | 4    | `BAD_OPCODE`  | unknown opcode byte                      | open       |
//! | 5    | `BAD_LENGTH`  | body length wrong for the opcode         | open       |
//! | 6    | `BAD_ADDRESS` | line index out of range for the bank     | open       |
//! | 7    | `LINE_DEAD`   | uncorrectable error serving the request  | open       |
//!
//! Desync is impossible by construction for non-fatal errors: the length
//! prefix tells the decoder how many bytes to skip even when the payload
//! is garbage, so one bad frame costs exactly one error response and the
//! next frame parses cleanly. The two fatal codes are exactly the cases
//! where the prefix itself cannot be trusted (`OVERSIZE`) or cannot be
//! satisfied (`TRUNCATED`), so the daemon answers and closes instead of
//! guessing at a resync point.

use pcm_util::{Line512, DATA_BYTES};

/// Largest accepted payload (opcode + body), bytes. Telemetry responses
/// may be larger; the cap applies to what clients send.
pub const MAX_FRAME: u32 = 4096;

/// WRITE opcode.
pub const OP_WRITE: u8 = 0x01;
/// READ opcode.
pub const OP_READ: u8 = 0x02;
/// TELEMETRY opcode.
pub(crate) const OP_TELEMETRY: u8 = 0x03;
/// SHUTDOWN opcode.
pub(crate) const OP_SHUTDOWN: u8 = 0x04;

/// Response status: success.
pub const STATUS_OK: u8 = 0;

const WRITE_BODY: u32 = 8 + 8 + 8 + DATA_BYTES as u32;
const READ_BODY: u32 = 8 + 8;

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// One write-back: store `data` at the tenant's `line`, arriving at
    /// virtual cycle `at`.
    Write {
        /// Arrival time, virtual bus cycles.
        at: u64,
        /// Tenant id (routed to a bank, see [`crate::router`]).
        tenant: u64,
        /// Bank-local logical line index.
        line: u64,
        /// The 64-byte payload.
        data: Line512,
    },
    /// Read a line back.
    Read {
        /// Tenant id.
        tenant: u64,
        /// Bank-local logical line index.
        line: u64,
    },
    /// Fetch a rendered telemetry snapshot.
    Telemetry,
    /// Clean shutdown.
    Shutdown,
}

/// A typed protocol violation. `code()` is the on-wire error byte from the
/// module-level golden table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The stream ended inside a frame (header or payload incomplete).
    Truncated,
    /// Declared payload length exceeds [`MAX_FRAME`].
    Oversize {
        /// The length the prefix declared.
        declared: u32,
    },
    /// Zero-length payload: there is no opcode to dispatch on.
    Empty,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Body size does not match the opcode's fixed layout.
    BadLength {
        /// The offending opcode.
        opcode: u8,
        /// Body bytes received.
        got: u32,
        /// Body bytes the opcode requires.
        want: u32,
    },
}

impl ProtoError {
    /// The on-wire error code.
    pub fn code(&self) -> u8 {
        match self {
            ProtoError::Truncated => 1,
            ProtoError::Oversize { .. } => 2,
            ProtoError::Empty => 3,
            ProtoError::BadOpcode(_) => 4,
            ProtoError::BadLength { .. } => 5,
        }
    }

    /// Whether the connection must close: true exactly when the length
    /// prefix itself cannot be trusted, so skipping to the next frame
    /// would be a guess.
    pub fn is_fatal(&self) -> bool {
        matches!(self, ProtoError::Truncated | ProtoError::Oversize { .. })
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "stream ended inside a frame"),
            ProtoError::Oversize { declared } => {
                write!(
                    f,
                    "declared payload of {declared} bytes exceeds {MAX_FRAME}"
                )
            }
            ProtoError::Empty => write!(f, "zero-length payload carries no opcode"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::BadLength { opcode, got, want } => {
                write!(
                    f,
                    "opcode {opcode:#04x} wants a {want}-byte body, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Incremental frame decoder over a byte stream.
///
/// Push raw socket reads in with [`push`](Self::push), drain parsed frames
/// with [`next_frame`](Self::next_frame), and call
/// [`finish`](Self::finish) at end-of-stream to surface a trailing partial
/// frame as [`ProtoError::Truncated`].
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted lazily.
    pos: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing so a long-lived connection cannot
        // accumulate consumed prefix forever.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Parses the next complete frame, if one is buffered.
    ///
    /// Returns `None` when more bytes are needed. A non-fatal `Err`
    /// consumes exactly the offending frame — parsing may continue.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Oversize`] (fatal), [`ProtoError::Empty`],
    /// [`ProtoError::BadOpcode`], [`ProtoError::BadLength`].
    #[allow(clippy::should_implement_trait)]
    pub fn next_frame(&mut self) -> Option<Result<Request, ProtoError>> {
        let avail = self.buf.get(self.pos..).unwrap_or(&[]);
        let declared = u32::from_le_bytes(*avail.first_chunk::<4>()?);
        if declared > MAX_FRAME {
            // Fatal: do not consume — the connection is closing and the
            // buffer is dead anyway.
            return Some(Err(ProtoError::Oversize { declared }));
        }
        if declared == 0 {
            self.pos += 4;
            return Some(Err(ProtoError::Empty));
        }
        let total = 4 + declared as usize;
        let payload = avail.get(4..total)?;
        self.pos += total;
        Some(decode_payload(payload))
    }

    /// Signals end-of-stream: any buffered partial frame is a truncation.
    pub fn finish(&self) -> Result<(), ProtoError> {
        if self.pending() == 0 {
            Ok(())
        } else {
            Err(ProtoError::Truncated)
        }
    }
}

fn decode_payload(payload: &[u8]) -> Result<Request, ProtoError> {
    let Some(&opcode) = payload.first() else {
        return Err(ProtoError::Empty);
    };
    let body = payload.get(1..).unwrap_or(&[]);
    let want = match opcode {
        OP_WRITE => WRITE_BODY,
        OP_READ => READ_BODY,
        OP_TELEMETRY | OP_SHUTDOWN => 0,
        op => return Err(ProtoError::BadOpcode(op)),
    };
    if body.len() as u32 != want {
        return Err(ProtoError::BadLength {
            opcode,
            got: body.len() as u32,
            want,
        });
    }
    // Body length is validated above; the accessors still degrade to
    // zeroed fields rather than panic if a decode bug ever breaks that.
    let u64_at = |off: usize| {
        body.get(off..)
            .and_then(|s| s.first_chunk::<8>())
            .map(|c| u64::from_le_bytes(*c))
            .unwrap_or(0)
    };
    let mut raw = [0u8; DATA_BYTES];
    if let Some(src) = body.get(24..24 + DATA_BYTES) {
        raw.copy_from_slice(src);
    }
    Ok(match opcode {
        OP_WRITE => Request::Write {
            at: u64_at(0),
            tenant: u64_at(8),
            line: u64_at(16),
            data: Line512::from_bytes(&raw),
        },
        OP_READ => Request::Read {
            tenant: u64_at(0),
            line: u64_at(8),
        },
        OP_TELEMETRY => Request::Telemetry,
        _ => Request::Shutdown,
    })
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes a WRITE request frame.
pub fn encode_write(at: u64, tenant: u64, line: u64, data: &Line512) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + WRITE_BODY as usize);
    p.push(OP_WRITE);
    p.extend_from_slice(&at.to_le_bytes());
    p.extend_from_slice(&tenant.to_le_bytes());
    p.extend_from_slice(&line.to_le_bytes());
    p.extend_from_slice(&data.to_bytes());
    frame(&p)
}

/// Encodes a READ request frame.
pub fn encode_read(tenant: u64, line: u64) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + READ_BODY as usize);
    p.push(OP_READ);
    p.extend_from_slice(&tenant.to_le_bytes());
    p.extend_from_slice(&line.to_le_bytes());
    frame(&p)
}

/// Encodes a TELEMETRY request frame.
pub fn encode_telemetry() -> Vec<u8> {
    frame(&[OP_TELEMETRY])
}

/// Encodes a SHUTDOWN request frame.
pub fn encode_shutdown() -> Vec<u8> {
    frame(&[OP_SHUTDOWN])
}

/// Encodes a response frame: status byte plus body.
pub fn encode_response(status: u8, body: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + body.len());
    p.push(status);
    p.extend_from_slice(body);
    frame(&p)
}

/// Splits one response frame off the front of `buf`, returning
/// `(status, body, bytes_consumed)`. `None` if a full frame isn't there
/// yet. Client-side helper for tests and the smoke stage.
pub fn decode_response(buf: &[u8]) -> Option<(u8, &[u8], usize)> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4-byte slice")) as usize;
    if len == 0 || buf.len() < 4 + len {
        return None;
    }
    Some((buf[4], &buf[4 + 1..4 + len], 4 + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_round_trips() {
        let data = Line512::ones();
        let wire = encode_write(99, 7, 3, &data);
        let mut d = FrameDecoder::new();
        d.push(&wire);
        let req = d.next_frame().expect("complete").expect("valid");
        assert_eq!(
            req,
            Request::Write {
                at: 99,
                tenant: 7,
                line: 3,
                data
            }
        );
        assert!(d.next_frame().is_none());
        assert!(d.finish().is_ok());
    }

    #[test]
    fn frames_survive_byte_at_a_time_delivery() {
        let mut wire = encode_read(1, 2);
        wire.extend(encode_telemetry());
        wire.extend(encode_shutdown());
        let mut d = FrameDecoder::new();
        let mut got = Vec::new();
        for b in wire {
            d.push(&[b]);
            while let Some(r) = d.next_frame() {
                got.push(r.expect("valid"));
            }
        }
        assert_eq!(
            got,
            vec![
                Request::Read { tenant: 1, line: 2 },
                Request::Telemetry,
                Request::Shutdown
            ]
        );
    }

    #[test]
    fn bad_frame_consumes_exactly_itself() {
        // garbage opcode frame followed by a valid one: the decoder must
        // resync on the length prefix alone.
        let mut wire = frame(&[0xEE, 1, 2, 3]);
        wire.extend(encode_read(5, 6));
        let mut d = FrameDecoder::new();
        d.push(&wire);
        assert_eq!(d.next_frame(), Some(Err(ProtoError::BadOpcode(0xEE))));
        assert_eq!(
            d.next_frame(),
            Some(Ok(Request::Read { tenant: 5, line: 6 }))
        );
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(ProtoError::Truncated.code(), 1);
        assert_eq!(ProtoError::Oversize { declared: 9999 }.code(), 2);
        assert_eq!(ProtoError::Empty.code(), 3);
        assert_eq!(ProtoError::BadOpcode(0xFF).code(), 4);
        assert_eq!(
            ProtoError::BadLength {
                opcode: OP_READ,
                got: 3,
                want: 16
            }
            .code(),
            5
        );
    }

    #[test]
    fn response_round_trips() {
        let wire = encode_response(STATUS_OK, b"hello");
        let (status, body, used) = decode_response(&wire).expect("full frame");
        assert_eq!(status, STATUS_OK);
        assert_eq!(body, b"hello");
        assert_eq!(used, wire.len());
    }
}
