//! Live serve-path telemetry: counters, latency percentiles, wear digests.
//!
//! Everything here is a pure function of the request history, in virtual
//! time — snapshots are rendered to a canonical text form whose bytes the
//! replay suite compares across runs and shard counts. Keep the rendering
//! stable: any incidental change (float formatting, map ordering) shows up
//! as a replay-determinism failure, which is the point.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Exact latency histogram in whole bus cycles.
///
/// Distinct write latencies are few (occupancy plus quantised queueing
/// delay), so an ordered map of `latency → count` stays small while giving
/// *exact* percentiles — no bucketing error to drift across shard counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHist {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl LatencyHist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHist::default()
    }

    /// Records one latency observation (cycles).
    pub fn record(&mut self, cycles: u64) {
        *self.counts.entry(cycles).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Merges another histogram into this one (bank → global roll-up).
    pub fn absorb(&mut self, other: &LatencyHist) {
        for (&lat, &n) in &other.counts {
            *self.counts.entry(lat).or_insert(0) += n;
        }
        self.total += other.total;
    }

    /// The smallest latency `L` such that at least `permille`/1000 of
    /// observations are ≤ `L`. Returns 0 for an empty histogram.
    pub fn percentile_permille(&self, permille: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, ceiling division so
        // p1000 is the maximum and p500 the median's upper element.
        let rank = (self.total * permille).div_ceil(1000).max(1);
        let mut seen = 0u64;
        for (&lat, &n) in &self.counts {
            seen += n;
            if seen >= rank {
                return lat;
            }
        }
        // `total != 0` means the histogram is non-empty, but degrade to 0
        // rather than panic inside the serve loop if that ever breaks.
        self.counts.keys().next_back().copied().unwrap_or(0)
    }

    /// (p50, p99, p999) in cycles.
    pub fn summary(&self) -> (u64, u64, u64) {
        (
            self.percentile_permille(500),
            self.percentile_permille(990),
            self.percentile_permille(999),
        )
    }
}

/// Per-bank live counters, updated on the serve path.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankTelemetry {
    /// Write requests served (including ones that died).
    pub writes: u64,
    /// Read requests served.
    pub reads: u64,
    /// Writes rejected with an uncorrectable-error outcome.
    pub write_failures: u64,
    /// Requests addressed outside the bank's line range.
    pub bad_addresses: u64,
    /// Write latency distribution, virtual cycles.
    pub latency: LatencyHist,
    /// Virtual cycle at which the bank next becomes free.
    pub free_at: u64,
}

/// One bank's row in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankSnapshot {
    /// Bank index.
    pub bank: usize,
    /// Writes served.
    pub writes: u64,
    /// Demand writes stored compressed.
    pub compressed: u64,
    /// Cells programmed.
    pub flips: u64,
    /// Cells newly stuck.
    pub faults: u64,
    /// Dead physical lines.
    pub dead_lines: u64,
    /// Uncorrectable failures observed on the serve path.
    pub write_failures: u64,
    /// FNV-1a digest over the bank's full wear state.
    pub wear_digest: u64,
}

/// A rendered-comparable snapshot of the whole daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Virtual cycle the snapshot was taken at (max arrival seen).
    pub now: u64,
    /// Total writes served.
    pub writes: u64,
    /// Total reads served.
    pub reads: u64,
    /// Fraction of demand writes stored compressed.
    pub compressed_fraction: f64,
    /// Total cells newly stuck.
    pub faults: u64,
    /// Total dead physical lines.
    pub dead_lines: u64,
    /// Median write latency, cycles.
    pub p50: u64,
    /// 99th-percentile write latency, cycles.
    pub p99: u64,
    /// 99.9th-percentile write latency, cycles.
    pub p999: u64,
    /// Per-bank rows, in bank order.
    pub banks: Vec<BankSnapshot>,
}

impl Snapshot {
    /// Renders the canonical text form. Byte-stable by construction: only
    /// integers and one fixed-precision fraction, banks in index order.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "pcm-serve telemetry @ cycle {}", self.now);
        let _ = writeln!(
            s,
            "writes {} reads {} compressed_fraction {:.6} faults {} dead_lines {}",
            self.writes, self.reads, self.compressed_fraction, self.faults, self.dead_lines
        );
        let _ = writeln!(
            s,
            "write_latency_cycles p50 {} p99 {} p999 {}",
            self.p50, self.p99, self.p999
        );
        for b in &self.banks {
            let _ = writeln!(
                s,
                "bank {} writes {} compressed {} flips {} faults {} dead {} failures {} wear_digest {:016x}",
                b.bank,
                b.writes,
                b.compressed,
                b.flips,
                b.faults,
                b.dead_lines,
                b.write_failures,
                b.wear_digest
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact() {
        let mut h = LatencyHist::new();
        for lat in 1..=100u64 {
            h.record(lat);
        }
        assert_eq!(h.percentile_permille(500), 50);
        assert_eq!(h.percentile_permille(990), 99);
        assert_eq!(h.percentile_permille(999), 100);
        assert_eq!(h.percentile_permille(1000), 100);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        assert_eq!(LatencyHist::new().summary(), (0, 0, 0));
    }

    #[test]
    fn absorb_equals_pooled_recording() {
        let mut parts = [LatencyHist::new(), LatencyHist::new()];
        let mut pooled = LatencyHist::new();
        for i in 0..1000u64 {
            let lat = (i * 37) % 211;
            parts[(i % 2) as usize].record(lat);
            pooled.record(lat);
        }
        let mut merged = LatencyHist::new();
        merged.absorb(&parts[0]);
        merged.absorb(&parts[1]);
        assert_eq!(merged, pooled);
        assert_eq!(merged.summary(), pooled.summary());
    }

    #[test]
    fn render_is_stable() {
        let snap = Snapshot {
            now: 10,
            writes: 2,
            reads: 1,
            compressed_fraction: 0.5,
            faults: 0,
            dead_lines: 0,
            p50: 68,
            p99: 70,
            p999: 70,
            banks: vec![BankSnapshot {
                bank: 0,
                writes: 2,
                compressed: 1,
                flips: 3,
                faults: 0,
                dead_lines: 0,
                write_failures: 0,
                wear_digest: 0xdeadbeef,
            }],
        };
        assert_eq!(snap.render(), snap.render());
        assert!(snap.render().contains("p50 68 p99 70 p999 70"));
        assert!(snap.render().contains("wear_digest 00000000deadbeef"));
    }
}
