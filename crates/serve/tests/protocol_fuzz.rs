//! Protocol corruption suite: hostile byte streams must produce typed
//! error responses — never a panic, never a desynchronised connection.
//! The golden error-code table here is the wire contract; changing a code
//! is a protocol break and must show up as a diff in this file.

use pcm_serve::protocol::{
    decode_response, encode_read, encode_write, FrameDecoder, ProtoError, MAX_FRAME, OP_READ,
    OP_WRITE, STATUS_OK,
};
use pcm_serve::{ConnState, Daemon, ServeConfig};
use pcm_util::Line512;
use proptest::prelude::*;

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = (payload.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(payload);
    out
}

/// A deliberately tiny fleet: protocol handling is what's under test, and
/// the proptest cases below each build a fresh daemon.
fn tiny_config() -> ServeConfig {
    let mut cfg = ServeConfig::new(1);
    cfg.banks = 2;
    cfg.lines_per_bank = 8;
    cfg.tenants = 4;
    cfg
}

fn drive(wire: &[u8]) -> (Vec<(u8, Vec<u8>)>, ConnState) {
    let mut daemon = Daemon::new(tiny_config());
    let mut decoder = FrameDecoder::new();
    let mut out = Vec::new();
    let state = daemon.handle_bytes(&mut decoder, wire, &mut out);
    let mut responses = Vec::new();
    let mut rest = &out[..];
    while let Some((status, body, used)) = decode_response(rest) {
        responses.push((status, body.to_vec()));
        rest = &rest[used..];
    }
    assert!(rest.is_empty(), "responses are always whole frames");
    (responses, state)
}

/// The golden error-code table (protocol.rs module docs). A mismatch here
/// is a wire-protocol break.
#[test]
fn golden_error_code_table() {
    let cases: [(ProtoError, u8, bool); 5] = [
        (ProtoError::Truncated, 1, true),
        (ProtoError::Oversize { declared: 70_000 }, 2, true),
        (ProtoError::Empty, 3, false),
        (ProtoError::BadOpcode(0xAB), 4, false),
        (
            ProtoError::BadLength {
                opcode: OP_READ,
                got: 2,
                want: 16,
            },
            5,
            false,
        ),
    ];
    for (err, code, fatal) in cases {
        assert_eq!(err.code(), code, "{err:?}");
        assert_eq!(err.is_fatal(), fatal, "{err:?}");
    }
}

#[test]
fn truncated_frame_is_detected_at_stream_end() {
    let wire = encode_write(1, 2, 3, &Line512::ones());
    for cut in 1..wire.len() {
        let mut d = FrameDecoder::new();
        d.push(&wire[..cut]);
        assert!(d.next_frame().is_none(), "cut={cut}: partial frame parsed");
        assert_eq!(d.finish(), Err(ProtoError::Truncated), "cut={cut}");
    }
}

#[test]
fn oversized_length_is_fatal_and_answered() {
    let mut wire = (MAX_FRAME + 1).to_le_bytes().to_vec();
    wire.extend_from_slice(&[0u8; 16]); // it will never deliver the rest
    let (responses, state) = drive(&wire);
    assert_eq!(state, ConnState::Closed);
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].0, 2, "OVERSIZE code");
}

#[test]
fn garbage_payload_yields_typed_error_and_no_desync() {
    // garbage frame, then a valid write, then a short-bodied write: the
    // daemon must answer all three and stay in sync throughout.
    let mut wire = frame(&[0xEE, 0xBB, 0xCC]);
    wire.extend(encode_write(10, 1, 0, &Line512::ones()));
    wire.extend(frame(&[OP_WRITE, 1, 2, 3, 4]));
    wire.extend(encode_read(1, 0));
    let (responses, state) = drive(&wire);
    assert_eq!(state, ConnState::Open);
    assert_eq!(responses.len(), 4);
    assert_eq!(responses[0].0, 4, "BAD_OPCODE");
    assert_eq!(responses[1].0, STATUS_OK, "valid write still serves");
    assert_eq!(responses[2].0, 5, "BAD_LENGTH");
    assert_eq!(responses[3].0, STATUS_OK, "read back after the garbage");
    assert_eq!(responses[3].1, Line512::ones().to_bytes().to_vec());
}

#[test]
fn zero_length_frame_is_answered_and_skipped() {
    let mut wire = frame(&[]);
    wire.extend(encode_read(1, 0));
    let (responses, state) = drive(&wire);
    assert_eq!(state, ConnState::Open);
    assert_eq!(responses[0].0, 3, "EMPTY");
    // The read finds an unwritten line: LINE_DEAD (7), not a desync.
    assert_eq!(responses[1].0, 7);
}

#[test]
fn out_of_range_line_is_a_typed_error() {
    let cfg = tiny_config();
    let wire = encode_write(5, 0, cfg.lines_per_bank + 10, &Line512::ones());
    let (responses, state) = drive(&wire);
    assert_eq!(state, ConnState::Open);
    assert_eq!(responses[0].0, 6, "BAD_ADDRESS");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the decoder or the daemon, and
    /// every emitted response is a whole, decodable frame.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let (_responses, _state) = drive(&bytes);
    }

    /// Any prefix of any valid frame sequence parses no frame it wasn't
    /// given: cutting a stream never fabricates or reorders requests.
    #[test]
    fn prefixes_never_fabricate_frames(
        tenant in any::<u64>(),
        line in 0u64..64,
        cut_ppm in 0u64..1_000_000,
    ) {
        let mut wire = encode_write(1, tenant, line, &Line512::ones());
        wire.extend(encode_read(tenant, line));
        let cut = (wire.len() as u64 * cut_ppm / 1_000_000) as usize;
        let mut d = FrameDecoder::new();
        d.push(&wire[..cut]);
        let mut parsed = 0;
        while let Some(r) = d.next_frame() {
            prop_assert!(r.is_ok());
            parsed += 1;
        }
        prop_assert!(parsed <= 2);
        // A clean cut on a frame boundary is not a truncation; anything
        // else is.
        let write_len = encode_write(1, tenant, line, &Line512::ones()).len();
        let boundary = cut == 0 || cut == write_len || cut == wire.len();
        prop_assert_eq!(d.finish().is_ok(), boundary, "cut={}", cut);
    }

    /// Interleaving garbage frames between valid ones costs exactly one
    /// error response each and never corrupts the valid traffic around
    /// them.
    #[test]
    fn garbage_frames_cost_exactly_one_error_each(
        garbage in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 1..64), 1..8),
    ) {
        let mut wire = Vec::new();
        let mut expect_ok = 0;
        for g in &garbage {
            wire.extend(frame(g));
            wire.extend(encode_read(7, 0));
            expect_ok += 1;
        }
        let (responses, state) = drive(&wire);
        prop_assert_eq!(state, ConnState::Open);
        prop_assert_eq!(responses.len(), garbage.len() + expect_ok);
        // Valid reads answer OK (or LINE_DEAD for the unwritten line),
        // garbage answers a protocol code 3/4/5 — in strict alternation.
        for (i, (status, _)) in responses.iter().enumerate() {
            if i % 2 == 0 {
                // Garbage slot — unless the random bytes happened to form
                // a valid opcode+body, which proptest can and will find.
                prop_assert!(
                    [3, 4, 5, 6, 7, STATUS_OK].contains(status),
                    "slot {} status {}", i, status
                );
            } else {
                prop_assert!(
                    *status == STATUS_OK || *status == 7,
                    "valid read got status {}", status
                );
            }
        }
    }
}
