//! Property suite for the tenant→bank router and the traffic generator's
//! zipfian tenant mix.

use pcm_serve::router::route;
use pcm_serve::{ServeConfig, TrafficGen};
use pcm_util::dist::Zipf;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Routing is a total function over the whole tenant space: every
    /// `u64` maps to a valid bank, with no panic and no reserved ids.
    #[test]
    fn routing_is_total(tenant in any::<u64>(), banks in 1u32..64) {
        let bank = route(tenant, banks);
        prop_assert!(bank < banks);
    }

    /// Purity: the same `(tenant, banks)` pair always yields the same
    /// bank (no hidden state).
    #[test]
    fn routing_is_pure(tenant in any::<u64>(), banks in 1u32..64) {
        prop_assert_eq!(route(tenant, banks), route(tenant, banks));
    }

    /// The documented remap rule — the ONLY way a bank-count change may
    /// move tenants: growing `k → k+1` either leaves a tenant where it
    /// was or moves it to the brand-new bank `k`. Applied transitively
    /// this pins the remap behaviour for any growth.
    #[test]
    fn growth_remaps_only_to_the_new_bank(tenant in any::<u64>(), banks in 1u32..63) {
        let old = route(tenant, banks);
        let new = route(tenant, banks + 1);
        prop_assert!(
            new == old || new == banks,
            "tenant {} moved {} -> {} when bank {} was added",
            tenant, old, new, banks
        );
    }
}

/// Growth moves roughly `1/(k+1)` of tenants (the consistent-hashing
/// payoff); a naive `tenant % k` map would reshuffle nearly all of them.
#[test]
fn growth_moves_about_one_in_k_plus_one() {
    let tenants = 20_000u64;
    for k in [4u32, 8, 12] {
        let moved = (0..tenants)
            .filter(|&t| route(t, k) != route(t, k + 1))
            .count() as f64;
        let expect = tenants as f64 / (k + 1) as f64;
        assert!(
            moved > expect * 0.7 && moved < expect * 1.3,
            "k={k}: moved {moved}, expected ~{expect:.0}"
        );
    }
}

/// The generator's empirical tenant rank-frequency stays within a
/// tolerance band of the configured Zipf pmf for the popular ranks (the
/// tail is too thin to measure tightly at this sample size).
#[test]
fn zipfian_tenant_mix_tracks_its_parameter() {
    let mut cfg = ServeConfig::new(0xF00D);
    cfg.mean_gap_cycles = 4.0; // dense arrivals: big sample, short horizon
    let mut gen = TrafficGen::new(&cfg);
    let samples = 120_000usize;
    let mut counts = vec![0u64; cfg.tenants as usize];
    for _ in 0..samples {
        counts[gen.next_write().tenant as usize] += 1;
    }
    let zipf = Zipf::new(cfg.tenants as usize, cfg.zipf_s);
    for rank in 0..10 {
        let expect = zipf.pmf(rank) * samples as f64;
        let got = counts[rank] as f64;
        let err = (got - expect).abs() / expect;
        assert!(
            err < 0.10,
            "rank {rank}: got {got}, expected {expect:.0} (err {err:.3})"
        );
    }
    // Monotone-ish head: the hottest tenant really is the hottest.
    assert!(counts[0] > counts[5]);
    assert!(counts[0] > counts[30]);
}

/// Every tenant routes somewhere inside the configured fleet, and the
/// engine's `bank_of` agrees with the raw router.
#[test]
fn engine_routing_agrees_with_router() {
    let cfg = ServeConfig::new(3);
    let engine = pcm_serve::Engine::new(cfg.clone());
    for tenant in 0..cfg.tenants {
        assert_eq!(
            engine.bank_of(tenant),
            route(tenant, cfg.banks as u32) as usize
        );
    }
}
