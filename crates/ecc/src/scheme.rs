//! The common interface of hard-error tolerance schemes.

use pcm_util::fault::FaultMap;
use pcm_util::Line512;
use std::fmt;

/// Error returned when a scheme cannot store data over the given faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EccError {
    /// More faults than the scheme can mask for this data.
    TooManyFaults {
        /// Name of the scheme that gave up.
        scheme: &'static str,
        /// Number of faults it was asked to cover.
        faults: u32,
    },
}

impl fmt::Display for EccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccError::TooManyFaults { scheme, faults } => {
                write!(f, "{scheme} cannot mask {faults} faulty cells")
            }
        }
    }
}

impl std::error::Error for EccError {}

/// A hard-error tolerance scheme for a 512-bit memory line.
///
/// The central question a scheme answers for the compression-window
/// controller is [`can_store`](Self::can_store): given the faulty cell
/// positions that fall *inside the written region*, can the scheme mask
/// them for **any** data value? (Cells outside the compression window are
/// don't-care: nothing is read from them.)
///
/// Implementations also expose their deterministic guarantee and their
/// metadata footprint in the 64-bit ECC-chip budget.
pub trait HardErrorScheme: Send + Sync {
    /// Human-readable name (e.g. `"ECP-6"`).
    fn name(&self) -> &'static str;

    /// Number of faults the scheme corrects *deterministically*, regardless
    /// of position.
    fn guaranteed(&self) -> u32;

    /// Metadata bits consumed in the per-line 64-bit ECC-chip region.
    fn metadata_bits(&self) -> u32;

    /// Returns `true` if a line whose written region contains faulty cells
    /// at exactly `fault_positions` (bit indices in `0..512`) can store any
    /// data value.
    ///
    /// Positions keep their *physical* indices even when the written region
    /// is a small compression window — partition-based schemes partition
    /// physical positions.
    fn can_store(&self, fault_positions: &[u16]) -> bool;

    /// Payload-transform tag bits this scheme stores per line, *on top of*
    /// [`metadata_bits`](Self::metadata_bits)' correction state. Zero for
    /// plain correction schemes; coset coding spends its spare budget here.
    fn transform_bits(&self) -> u32 {
        0
    }

    /// Transforms the payload before it is written: given the intended
    /// `target` line, the currently `stored` physical line, the active
    /// compression-window `window_mask`, and the line's `faults`, returns
    /// the line to actually store plus a transform tag (must fit
    /// [`transform_bits`](Self::transform_bits)). The default is the
    /// identity transform with tag 0.
    ///
    /// Only bits inside `window_mask` reach the cells; the tag must be
    /// enough to invert the transform on those bits alone.
    fn encode_payload(
        &self,
        target: &Line512,
        stored: &Line512,
        window_mask: &Line512,
        faults: &FaultMap,
    ) -> (Line512, u16) {
        let _ = (stored, window_mask, faults);
        (*target, 0)
    }

    /// Inverts [`encode_payload`](Self::encode_payload) on a corrected
    /// line, recovering the original payload from the stored transform tag.
    fn decode_payload(&self, corrected: &Line512, tag: u16) -> Line512 {
        let _ = tag;
        *corrected
    }
}

impl fmt::Debug for dyn HardErrorScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HardErrorScheme({})", self.name())
    }
}

/// Finds the lowest byte-aligned compression-window offset at which a
/// `window_bytes`-byte payload can be stored despite the line's faults —
/// the *sliding window* search of the paper's Comp+WF design (§III-A).
///
/// `fault_positions` must be sorted ascending (bit indices in `0..512`).
/// Returns the byte offset of the first feasible window, or `None` when the
/// line is dead for this payload size.
///
/// # Examples
///
/// ```
/// use pcm_ecc::{find_window, Ecp};
///
/// // Ten faults packed into the first byte: a 16-byte window must slide
/// // past them.
/// let faults: Vec<u16> = (0..8).collect();
/// let offset = find_window(&Ecp::new(6), &faults, 16).unwrap();
/// assert_eq!(offset, 1);
/// ```
///
/// # Panics
///
/// Panics if `window_bytes` is 0 or greater than 64.
pub fn find_window(
    scheme: &dyn HardErrorScheme,
    fault_positions: &[u16],
    window_bytes: usize,
) -> Option<usize> {
    assert!(
        (1..=pcm_util::DATA_BYTES).contains(&window_bytes),
        "window must be 1..=64 bytes, got {window_bytes}"
    );
    debug_assert!(
        fault_positions.windows(2).all(|w| w[0] <= w[1]),
        "positions must be sorted"
    );
    for offset in 0..=(pcm_util::DATA_BYTES - window_bytes) {
        let lo = (offset * 8) as u16;
        let hi = ((offset + window_bytes) * 8) as u16;
        let start = fault_positions.partition_point(|&p| p < lo);
        let end = fault_positions.partition_point(|&p| p < hi);
        if scheme.can_store(&fault_positions[start..end]) {
            return Some(offset);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = EccError::TooManyFaults {
            scheme: "ECP-6",
            faults: 9,
        };
        assert_eq!(e.to_string(), "ECP-6 cannot mask 9 faulty cells");
    }
}
