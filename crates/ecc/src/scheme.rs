//! The common interface of hard-error tolerance schemes.

use pcm_util::fault::FaultMap;
use pcm_util::Line512;
use std::fmt;

/// Error returned when a scheme cannot store data over the given faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EccError {
    /// More faults than the scheme can mask for this data.
    TooManyFaults {
        /// Name of the scheme that gave up.
        scheme: &'static str,
        /// Number of faults it was asked to cover.
        faults: u32,
    },
}

impl fmt::Display for EccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccError::TooManyFaults { scheme, faults } => {
                write!(f, "{scheme} cannot mask {faults} faulty cells")
            }
        }
    }
}

impl std::error::Error for EccError {}

/// A hard-error tolerance scheme for a 512-bit memory line.
///
/// The central question a scheme answers for the compression-window
/// controller is [`can_store`](Self::can_store): given the faulty cell
/// positions that fall *inside the written region*, can the scheme mask
/// them for **any** data value? (Cells outside the compression window are
/// don't-care: nothing is read from them.)
///
/// Implementations also expose their deterministic guarantee and their
/// metadata footprint in the 64-bit ECC-chip budget.
pub trait HardErrorScheme: Send + Sync {
    /// Human-readable name (e.g. `"ECP-6"`).
    fn name(&self) -> &'static str;

    /// Number of faults the scheme corrects *deterministically*, regardless
    /// of position.
    fn guaranteed(&self) -> u32;

    /// Metadata bits consumed in the per-line 64-bit ECC-chip region.
    fn metadata_bits(&self) -> u32;

    /// Returns `true` if a line whose written region contains faulty cells
    /// at exactly `fault_positions` (bit indices in `0..512`) can store any
    /// data value.
    ///
    /// Positions keep their *physical* indices even when the written region
    /// is a small compression window — partition-based schemes partition
    /// physical positions.
    fn can_store(&self, fault_positions: &[u16]) -> bool;

    /// Payload-transform tag bits this scheme stores per line, *on top of*
    /// [`metadata_bits`](Self::metadata_bits)' correction state. Zero for
    /// plain correction schemes; coset coding spends its spare budget here.
    fn transform_bits(&self) -> u32 {
        0
    }

    /// Transforms the payload before it is written: given the intended
    /// `target` line, the currently `stored` physical line, the active
    /// compression-window `window_mask`, and the line's `faults`, returns
    /// the line to actually store plus a transform tag (must fit
    /// [`transform_bits`](Self::transform_bits)). The default is the
    /// identity transform with tag 0.
    ///
    /// Only bits inside `window_mask` reach the cells; the tag must be
    /// enough to invert the transform on those bits alone.
    fn encode_payload(
        &self,
        target: &Line512,
        stored: &Line512,
        window_mask: &Line512,
        faults: &FaultMap,
    ) -> (Line512, u16) {
        let _ = (stored, window_mask, faults);
        (*target, 0)
    }

    /// Inverts [`encode_payload`](Self::encode_payload) on a corrected
    /// line, recovering the original payload from the stored transform tag.
    fn decode_payload(&self, corrected: &Line512, tag: u16) -> Line512 {
        let _ = tag;
        *corrected
    }
}

impl fmt::Debug for dyn HardErrorScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HardErrorScheme({})", self.name())
    }
}

/// Finds the lowest byte-aligned compression-window offset at which a
/// `window_bytes`-byte payload can be stored despite the line's faults —
/// the *sliding window* search of the paper's Comp+WF design (§III-A).
///
/// `fault_positions` must be sorted ascending (bit indices in `0..512`).
/// Returns the byte offset of the first feasible window, or `None` when the
/// line is dead for this payload size.
///
/// # Examples
///
/// ```
/// use pcm_ecc::{find_window, Ecp};
///
/// // Ten faults packed into the first byte: a 16-byte window must slide
/// // past them.
/// let faults: Vec<u16> = (0..8).collect();
/// let offset = find_window(&Ecp::new(6), &faults, 16).unwrap();
/// assert_eq!(offset, 1);
/// ```
///
/// # Panics
///
/// Panics if `window_bytes` is 0 or greater than 64.
pub fn find_window(
    scheme: &dyn HardErrorScheme,
    fault_positions: &[u16],
    window_bytes: usize,
) -> Option<usize> {
    assert!(
        (1..=pcm_util::DATA_BYTES).contains(&window_bytes),
        "window must be 1..=64 bytes, got {window_bytes}"
    );
    debug_assert!(
        fault_positions.windows(2).all(|w| w[0] <= w[1]),
        "positions must be sorted"
    );
    for offset in 0..=(pcm_util::DATA_BYTES - window_bytes) {
        let lo = (offset * 8) as u16;
        let hi = ((offset + window_bytes) * 8) as u16;
        let start = fault_positions.partition_point(|&p| p < lo);
        let end = fault_positions.partition_point(|&p| p < hi);
        if scheme.can_store(&fault_positions[start..end]) {
            return Some(offset);
        }
    }
    None
}

/// Batch twin of [`find_window`] for up to 64 independent fault sets:
/// returns how many lanes have **no** feasible window — the Fig. 9
/// Monte-Carlo failure count.
///
/// `masks` holds each lane's faults as a set-bit mask (struct-of-arrays,
/// so one [`pcm_util::simd::batch_window_popcount`] call counts a window's
/// faults across all lanes at once); `positions` holds the same faults as
/// sorted bit indices, lane `i` occupying
/// `positions[lane_ends[i-1]..lane_ends[i]]`.
///
/// Lane `i`'s verdict is exactly
/// `find_window(scheme, positions_i, window_bytes).is_none()`: a window
/// whose fault count is at most [`guaranteed`](HardErrorScheme::guaranteed)
/// is feasible by the trait contract (deterministic correction regardless
/// of position — the `guaranteed_faults_round_trip` property test pins
/// this for every scheme), so the popcount sweep resolves those lanes
/// without touching [`can_store`](HardErrorScheme::can_store); denser
/// windows fall back to the scalar subset check.
///
/// # Panics
///
/// Panics if `window_bytes` is outside `1..=64` or `lane_ends` does not
/// describe one fault run per live lane.
pub fn count_window_failures(
    scheme: &dyn HardErrorScheme,
    masks: &pcm_util::simd::LineBatch64,
    positions: &[u16],
    lane_ends: &[usize],
    window_bytes: usize,
) -> u64 {
    assert!(
        (1..=pcm_util::DATA_BYTES).contains(&window_bytes),
        "window must be 1..=64 bytes, got {window_bytes}"
    );
    assert_eq!(lane_ends.len(), masks.len(), "one fault run per lane");
    assert_eq!(
        lane_ends.last().copied().unwrap_or(0),
        positions.len(),
        "lane runs must cover the position buffer"
    );
    let lanes = masks.len();
    if lanes == 0 {
        return 0;
    }
    let guaranteed = scheme.guaranteed();
    let mut unresolved: u64 = if lanes == 64 { !0 } else { (1u64 << lanes) - 1 };
    for offset in 0..=(pcm_util::DATA_BYTES - window_bytes) {
        if unresolved == 0 {
            break;
        }
        let counts = pcm_util::simd::batch_window_popcount(masks, offset, window_bytes);
        let mut pending = unresolved;
        while pending != 0 {
            let lane = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            let feasible = counts[lane] <= guaranteed || {
                let lane_lo = if lane == 0 { 0 } else { lane_ends[lane - 1] };
                let faults = &positions[lane_lo..lane_ends[lane]];
                let lo = (offset * 8) as u16;
                let hi = ((offset + window_bytes) * 8) as u16;
                let start = faults.partition_point(|&p| p < lo);
                let end = faults.partition_point(|&p| p < hi);
                scheme.can_store(&faults[start..end])
            };
            if feasible {
                unresolved &= !(1u64 << lane);
            }
        }
    }
    unresolved.count_ones() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aegis, Ecp, Safer};
    use pcm_util::simd::LineBatch64;
    use rand::RngExt;

    #[test]
    fn error_display() {
        let e = EccError::TooManyFaults {
            scheme: "ECP-6",
            faults: 9,
        };
        assert_eq!(e.to_string(), "ECP-6 cannot mask 9 faulty cells");
    }

    #[test]
    fn batch_window_failures_match_scalar_search() {
        // Random fault sets of widely varying density, partial and full
        // batches, several schemes and window sizes: the batch verdicts
        // must equal find_window's, lane for lane.
        let schemes: [&dyn HardErrorScheme; 3] =
            [&Ecp::new(6), &Safer::new(32), &Aegis::new(17, 31)];
        let mut rng = pcm_util::seeded_rng(0xF16_9);
        for scheme in schemes {
            for window_bytes in [1usize, 16, 48, 64] {
                for lanes in [1usize, 7, 64] {
                    let mut masks = LineBatch64::new();
                    let mut positions: Vec<u16> = Vec::new();
                    let mut lane_ends = Vec::new();
                    let mut want = 0u64;
                    for _ in 0..lanes {
                        let k = rng.random_range(0..40usize);
                        let mut faults: Vec<u16> = (0..k)
                            .map(|_| rng.random_range(0..pcm_util::DATA_BITS as u16))
                            .collect();
                        faults.sort_unstable();
                        faults.dedup();
                        let mut mask = Line512::zero();
                        for &p in &faults {
                            mask.set_bit(p as usize, true);
                        }
                        masks.push(&mask);
                        if find_window(scheme, &faults, window_bytes).is_none() {
                            want += 1;
                        }
                        positions.extend_from_slice(&faults);
                        lane_ends.push(positions.len());
                    }
                    let got =
                        count_window_failures(scheme, &masks, &positions, &lane_ends, window_bytes);
                    assert_eq!(
                        got,
                        want,
                        "{} window {} lanes {}",
                        scheme.name(),
                        window_bytes,
                        lanes
                    );
                }
            }
        }
    }
}
