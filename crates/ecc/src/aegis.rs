//! Aegis: grid-based partitioning for stuck-at fault recovery
//! (Fan et al., MICRO 2013).
//!
//! Aegis maps the 512 cell positions onto a `t × u` grid (17×31 for 64-byte
//! lines: position `p` sits at column `x = p mod u`, row `y = p div u`) and
//! partitions the cells along *lines* of the grid: for slope
//! `s ∈ {0, …, t-1}` the group of `p` is `(x + s·y) mod u`, and one extra
//! "horizontal" partition groups by row. Because `u` is prime, any two
//! distinct cells collide in **at most one** slope partition — so `t + 1`
//! partitions separate many more faults than SAFER manages with far more
//! stored subsets, using only a `⌈log2(t+1)⌉`-bit partition id plus `u`
//! inversion bits.
//!
//! Like SAFER, each group carries an inversion bit that makes its (single)
//! stuck cell agree with the data.

use crate::scheme::{EccError, HardErrorScheme};
use pcm_util::fault::FaultMap;
use pcm_util::{Line512, DATA_BITS};
use serde::{Deserialize, Serialize};

/// The Aegis scheme over a `t × u` grid (`u` prime, `t * u >= 512`).
///
/// # Examples
///
/// ```
/// use pcm_ecc::{Aegis, HardErrorScheme};
///
/// let aegis = Aegis::new(17, 31);
/// assert_eq!(aegis.name(), "Aegis 17x31");
/// assert!(aegis.can_store(&[0, 1, 2, 3, 4, 5]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aegis {
    t: u32,
    u: u32,
    /// Per partition, per group: mask of line positions in that group.
    group_masks: Vec<Vec<Line512>>,
}

/// The per-line Aegis state: the chosen partition and per-group inversions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AegisCode {
    /// Partition id: `0..t` are slopes, `t` is the horizontal partition.
    pub partition: u32,
    /// Inversion flag per group (length `u` for slopes, `t` for horizontal;
    /// always allocated at `u` ≥ `t`).
    pub inversions: Vec<bool>,
}

fn is_prime(n: u32) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n % d == 0 {
            return false;
        }
        d += 1;
    }
    true
}

impl Aegis {
    /// Creates an Aegis scheme over a `t × u` grid.
    ///
    /// # Panics
    ///
    /// Panics unless `u` is prime, `t <= u`, and the grid covers 512 cells.
    pub fn new(t: u32, u: u32) -> Self {
        assert!(is_prime(u), "u must be prime, got {u}");
        assert!(t >= 2 && t <= u, "need 2 <= t <= u, got t={t} u={u}");
        assert!(
            t * u >= DATA_BITS as u32,
            "grid {t}x{u} too small for 512 cells"
        );
        let mut aegis = Aegis {
            t,
            u,
            group_masks: Vec::new(),
        };
        aegis.group_masks = (0..=t)
            .map(|k| {
                let mut per_group = vec![Line512::zero(); u as usize];
                for pos in 0..DATA_BITS {
                    per_group[aegis.group(pos as u16, k)].set_bit(pos, true);
                }
                per_group
            })
            .collect();
        aegis
    }

    /// The 17×31 configuration evaluated in the paper.
    pub fn aegis_17x31() -> Self {
        Aegis::new(17, 31)
    }

    /// Grid coordinates of a cell position.
    fn coords(&self, pos: u16) -> (u32, u32) {
        let p = pos as u32;
        (p % self.u, p / self.u)
    }

    /// Group index of `pos` under partition `k` (`k == t` is horizontal).
    fn group(&self, pos: u16, k: u32) -> usize {
        let (x, y) = self.coords(pos);
        if k < self.t {
            ((x + k * y) % self.u) as usize
        } else {
            y as usize
        }
    }

    /// Number of partitions (`t` slopes + horizontal).
    pub fn partitions(&self) -> u32 {
        self.t + 1
    }

    /// Finds a partition that puts every fault in its own group.
    pub fn find_partition(&self, fault_positions: &[u16]) -> Option<u32> {
        if fault_positions.len() as u32 > self.u {
            return None;
        }
        // Pairwise collision probe: fault counts stay small over a line's
        // storable life, so O(f²) group comparisons beat allocating a
        // per-group "seen" table on the per-write hot path.
        'part: for k in 0..=self.t {
            for (i, &pos) in fault_positions.iter().enumerate() {
                let g = self.group(pos, k);
                for &prior in &fault_positions[..i] {
                    if self.group(prior, k) == g {
                        continue 'part;
                    }
                }
            }
            return Some(k);
        }
        None
    }

    /// Stores `data` into a line with the given faults; see
    /// [`Safer::write`](crate::Safer::write) for the shared semantics
    /// (deterministic partition first, data-dependent agreement as a
    /// fallback).
    ///
    /// # Errors
    ///
    /// Returns [`EccError::TooManyFaults`] when no partition works for this
    /// data.
    pub fn write(
        &self,
        data: &Line512,
        faults: &FaultMap,
    ) -> Result<(Line512, AegisCode), EccError> {
        let positions: Vec<u16> = faults.iter().map(|f| f.pos).collect();
        let chosen = self
            .find_partition(&positions)
            .or_else(|| (0..=self.t).find(|&k| self.inversions_for(k, data, faults).is_some()));
        let Some(k) = chosen else {
            return Err(EccError::TooManyFaults {
                scheme: self.name(),
                faults: faults.count(),
            });
        };
        let inversions = self
            .inversions_for(k, data, faults)
            .expect("partition was validated");
        let stored = faults.apply(self.transform(data, k, &inversions));
        Ok((
            stored,
            AegisCode {
                partition: k,
                inversions,
            },
        ))
    }

    /// Reconstructs the original data from a physical line and its code.
    pub fn read(&self, stored: &Line512, code: &AegisCode) -> Line512 {
        self.transform(stored, code.partition, &code.inversions)
    }

    fn transform(&self, line: &Line512, k: u32, inversions: &[bool]) -> Line512 {
        let mut out = *line;
        for (g, &inv) in inversions.iter().enumerate() {
            if inv {
                out = out ^ self.group_masks[k as usize][g];
            }
        }
        out
    }

    fn inversions_for(&self, k: u32, data: &Line512, faults: &FaultMap) -> Option<Vec<bool>> {
        // pcm-audit: allow(hotpath-alloc) — the inversion vector is the stored per-line code word, not scratch; it escapes into AegisCode
        let mut inversions = vec![false; self.u as usize];
        // Dense "group already constrained" bitmap: group indices are
        // bounded by the 512 cell positions, so 8 words always suffice.
        let mut fixed = [0u64; 8];
        for f in faults.iter() {
            let g = self.group(f.pos, k);
            let needed = data.bit(f.pos as usize) != f.value;
            if fixed[g / 64] >> (g % 64) & 1 == 1 && inversions[g] != needed {
                return None;
            }
            inversions[g] = needed;
            fixed[g / 64] |= 1 << (g % 64);
        }
        Some(inversions)
    }
}

impl HardErrorScheme for Aegis {
    fn name(&self) -> &'static str {
        if self.t == 17 && self.u == 31 {
            "Aegis 17x31"
        } else {
            "Aegis"
        }
    }

    fn guaranteed(&self) -> u32 {
        // Any pair of faults invalidates at most ONE partition: a same-row
        // pair collides only in the horizontal partition, a different-row
        // pair collides in exactly one slope k* ∈ Z_u (u prime) — and only
        // if k* < t. So f faults invalidate at most f(f-1)/2 of the t+1
        // partitions, and are always separable while f(f-1)/2 < t + 1.
        let parts = self.partitions();
        let mut f = 1;
        while f * (f + 1) / 2 < parts {
            f += 1;
        }
        f
    }

    fn metadata_bits(&self) -> u32 {
        let selector = 32 - self.partitions().leading_zeros();
        self.u + selector
    }

    fn can_store(&self, fault_positions: &[u16]) -> bool {
        self.find_partition(fault_positions).is_some()
    }
}

impl std::fmt::Display for Aegis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Aegis {}x{}", self.t, self.u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_util::fault::StuckAt;
    use pcm_util::seeded_rng;
    use rand::seq::SliceRandom;

    #[test]
    fn pairwise_collision_at_most_one_slope() {
        let aegis = Aegis::aegis_17x31();
        let mut rng = seeded_rng(41);
        let mut all: Vec<u16> = (0..512).collect();
        for _ in 0..100 {
            all.shuffle(&mut rng);
            let (p, q) = (all[0], all[1]);
            let collisions = (0..aegis.t)
                .filter(|&k| aegis.group(p, k) == aegis.group(q, k))
                .count();
            assert!(
                collisions <= 1,
                "positions {p},{q} collide in {collisions} slopes"
            );
        }
    }

    #[test]
    fn guaranteed_matches_partition_count() {
        let aegis = Aegis::aegis_17x31();
        // 18 partitions: f(f-1)/2 < 18 holds through f = 6 (15 < 18).
        assert_eq!(aegis.guaranteed(), 6);
    }

    #[test]
    fn guarantee_holds_empirically() {
        let aegis = Aegis::aegis_17x31();
        let mut rng = seeded_rng(42);
        let mut all: Vec<u16> = (0..512).collect();
        for _ in 0..300 {
            all.shuffle(&mut rng);
            let faults = &all[..aegis.guaranteed() as usize];
            assert!(aegis.can_store(faults), "faults {faults:?} not separable");
        }
    }

    #[test]
    fn separates_many_random_faults_probabilistically() {
        // Aegis should typically separate far more than its guarantee.
        let aegis = Aegis::aegis_17x31();
        let mut rng = seeded_rng(43);
        let mut all: Vec<u16> = (0..512).collect();
        let mut successes = 0;
        for _ in 0..100 {
            all.shuffle(&mut rng);
            if aegis.can_store(&all[..12]) {
                successes += 1;
            }
        }
        assert!(
            successes >= 50,
            "only {successes}/100 of 12-fault sets separable"
        );
    }

    #[test]
    fn write_read_round_trip() {
        let aegis = Aegis::aegis_17x31();
        let mut rng = seeded_rng(44);
        let faults: FaultMap = [
            StuckAt {
                pos: 3,
                value: true,
            },
            StuckAt {
                pos: 77,
                value: false,
            },
            StuckAt {
                pos: 200,
                value: true,
            },
            StuckAt {
                pos: 317,
                value: false,
            },
            StuckAt {
                pos: 450,
                value: true,
            },
        ]
        .into_iter()
        .collect();
        for _ in 0..32 {
            let data = Line512::random(&mut rng);
            let (stored, code) = aegis.write(&data, &faults).unwrap();
            for f in faults.iter() {
                assert_eq!(stored.bit(f.pos as usize), f.value);
            }
            assert_eq!(aegis.read(&stored, &code), data);
        }
    }

    #[test]
    fn metadata_fits_ecc_chip() {
        let aegis = Aegis::aegis_17x31();
        assert_eq!(aegis.metadata_bits(), 31 + 5);
        assert!(aegis.metadata_bits() <= 64);
    }

    #[test]
    fn horizontal_partition_rescues_same_column() {
        let aegis = Aegis::aegis_17x31();
        // Same column (x equal), distinct rows: slope partitions may
        // separate them; pile up many to force horizontal relevance.
        let faults: Vec<u16> = (0..10).map(|y| (y * 31) as u16).collect(); // x = 0, y = 0..10
                                                                           // Same x, distinct y: slope k groups are (0 + k*y) mod 31 — distinct
                                                                           // for k >= 1; slope 0 groups all into x=0. Must be separable.
        assert!(aegis.can_store(&faults));
    }

    #[test]
    #[should_panic(expected = "prime")]
    fn rejects_composite_u() {
        Aegis::new(17, 30);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_small_grid() {
        Aegis::new(3, 5);
    }
}
