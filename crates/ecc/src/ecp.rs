//! Error-Correcting Pointers (Schechter et al., ISCA 2010).
//!
//! ECP keeps, per corrected fault, a 9-bit pointer into the 512-bit line
//! plus one replacement cell that stores the data bit the faulty cell
//! should have held. Correction happens after a read by patching the
//! pointed-to positions. ECP-*n* needs `n × 10 + 1` metadata bits (the +1
//! is the "full" bit); ECP-6's 61 bits fit the 64-bit ECC-chip budget with
//! three bits to spare — the paper uses one of them as the per-line
//! *compressed* flag.

use crate::scheme::{EccError, HardErrorScheme};
use pcm_util::fault::FaultMap;
use pcm_util::Line512;
use serde::{Deserialize, Serialize};

/// The ECP scheme, parameterized by the number of correction entries.
///
/// # Examples
///
/// ```
/// use pcm_ecc::{Ecp, HardErrorScheme};
///
/// let ecp = Ecp::new(6);
/// assert_eq!(ecp.name(), "ECP-6");
/// assert_eq!(ecp.metadata_bits(), 61);
/// assert_eq!(ecp.guaranteed(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ecp {
    entries: u32,
}

/// The per-line ECP correction state: one `(pointer, replacement)` pair per
/// covered fault.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EcpCode {
    pairs: Vec<(u16, bool)>,
}

impl EcpCode {
    /// The `(position, replacement bit)` pairs in use.
    pub fn pairs(&self) -> &[(u16, bool)] {
        &self.pairs
    }

    /// Creates a code from raw pairs (used by the metadata codec).
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    pub fn from_pairs(pairs: Vec<(u16, bool)>) -> Self {
        assert!(pairs
            .iter()
            .all(|&(p, _)| (p as usize) < pcm_util::DATA_BITS));
        EcpCode { pairs }
    }
}

impl Ecp {
    /// Creates an ECP scheme with `entries` correction entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is 0 or more than 51 (the most that fit a 512-bit
    /// metadata budget at 10 bits per entry).
    pub fn new(entries: u32) -> Self {
        assert!(
            (1..=51).contains(&entries),
            "ECP entries must be 1..=51, got {entries}"
        );
        Ecp { entries }
    }

    /// The standard ECP-6 configuration used throughout the paper.
    pub fn ecp6() -> Self {
        Ecp::new(6)
    }

    /// Number of correction entries.
    pub fn entries(&self) -> u32 {
        self.entries
    }

    /// Stores `data` into a line with the given faults.
    ///
    /// Returns the physical line (stuck cells forced to their stuck values)
    /// and the [`EcpCode`] holding the replacement bits.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::TooManyFaults`] when the fault count exceeds the
    /// entry budget.
    pub fn write(&self, data: &Line512, faults: &FaultMap) -> Result<(Line512, EcpCode), EccError> {
        if faults.count() > self.entries {
            return Err(EccError::TooManyFaults {
                scheme: self.name(),
                faults: faults.count(),
            });
        }
        let stored = faults.apply(*data);
        let pairs = faults
            .iter()
            .map(|f| (f.pos, data.bit(f.pos as usize)))
            .collect();
        Ok((stored, EcpCode { pairs }))
    }

    /// Reconstructs the original data from a physical line and its code.
    pub fn read(&self, stored: &Line512, code: &EcpCode) -> Line512 {
        let mut out = *stored;
        for &(pos, bit) in &code.pairs {
            #[cfg(feature = "verify-mutations")]
            let pos = if crate::mutation::active() == crate::mutation::Mutation::EcpPointerOffByOne
            {
                (pos + 1) % pcm_util::DATA_BITS as u16
            } else {
                pos
            };
            out.set_bit(pos as usize, bit);
        }
        out
    }
}

impl HardErrorScheme for Ecp {
    fn name(&self) -> &'static str {
        match self.entries {
            6 => "ECP-6",
            _ => "ECP",
        }
    }

    fn guaranteed(&self) -> u32 {
        self.entries
    }

    fn metadata_bits(&self) -> u32 {
        self.entries * 10 + 1
    }

    fn can_store(&self, fault_positions: &[u16]) -> bool {
        fault_positions.len() as u32 <= self.entries
    }
}

impl std::fmt::Display for Ecp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ECP-{}", self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_util::fault::StuckAt;
    use pcm_util::seeded_rng;

    #[test]
    fn write_read_round_trip_with_faults() {
        let mut rng = seeded_rng(21);
        let ecp = Ecp::ecp6();
        for _ in 0..64 {
            let data = Line512::random(&mut rng);
            let faults: FaultMap = [
                StuckAt {
                    pos: 0,
                    value: true,
                },
                StuckAt {
                    pos: 100,
                    value: false,
                },
                StuckAt {
                    pos: 511,
                    value: true,
                },
            ]
            .into_iter()
            .collect();
            let (stored, code) = ecp.write(&data, &faults).unwrap();
            // Stuck cells hold their stuck value physically.
            assert!(stored.bit(0));
            assert!(!stored.bit(100));
            assert!(stored.bit(511));
            assert_eq!(ecp.read(&stored, &code), data);
        }
    }

    #[test]
    fn rejects_seven_faults() {
        let ecp = Ecp::ecp6();
        let faults: FaultMap = (0..7u16)
            .map(|i| StuckAt {
                pos: i * 10,
                value: true,
            })
            .collect();
        let err = ecp.write(&Line512::zero(), &faults).unwrap_err();
        assert_eq!(
            err,
            EccError::TooManyFaults {
                scheme: "ECP-6",
                faults: 7
            }
        );
        assert!(!ecp.can_store(&[0, 10, 20, 30, 40, 50, 60]));
    }

    #[test]
    fn capacity_is_position_independent() {
        let ecp = Ecp::new(2);
        assert!(ecp.can_store(&[5, 6]));
        assert!(ecp.can_store(&[0, 511]));
        assert!(!ecp.can_store(&[1, 2, 3]));
    }

    #[test]
    fn metadata_budget() {
        assert_eq!(Ecp::ecp6().metadata_bits(), 61);
        assert!(Ecp::ecp6().metadata_bits() <= 64);
        assert_eq!(Ecp::new(12).metadata_bits(), 121);
    }

    #[test]
    #[should_panic(expected = "must be 1..=51")]
    fn rejects_zero_entries() {
        Ecp::new(0);
    }

    #[test]
    fn no_faults_is_identity() {
        let mut rng = seeded_rng(22);
        let data = Line512::random(&mut rng);
        let ecp = Ecp::ecp6();
        let (stored, code) = ecp.write(&data, &FaultMap::new()).unwrap();
        assert_eq!(stored, data);
        assert!(code.pairs().is_empty());
        assert_eq!(ecp.read(&stored, &code), data);
    }
}
