//! Deliberate ECC-decode corruptions for harness self-checks.
//!
//! Compiled only under the `verify-mutations` feature. The verification
//! harness must *fail* when a decoder is wrong — these switches prove it
//! does, by seeding two realistic decoder bugs and asserting the harness
//! reports a mismatch for each:
//!
//! * [`Mutation::EcpPointerOffByOne`] — ECP patches position `pos + 1`
//!   instead of `pos` (a classic pointer-arithmetic slip).
//! * [`Mutation::SaferPartitionMisMap`] — SAFER applies the inversion
//!   pass with the *next* index-bit subset in its table, mis-mapping
//!   cells to groups.
//!
//! The switch is thread-local so self-check tests can run in parallel
//! with honest tests without contaminating them.

use std::cell::Cell;

/// Which decoder corruption is active on this thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// Honest decoding.
    #[default]
    None,
    /// ECP patches `pos + 1` (mod 512) instead of `pos`.
    EcpPointerOffByOne,
    /// SAFER un-inverts with the wrong partition subset.
    SaferPartitionMisMap,
}

thread_local! {
    static ACTIVE: Cell<Mutation> = const { Cell::new(Mutation::None) };
}

/// Activates a mutation on this thread (pass [`Mutation::None`] to clear).
pub(crate) fn set_mutation(m: Mutation) {
    ACTIVE.with(|a| a.set(m));
}

/// The mutation active on this thread.
pub fn active() -> Mutation {
    ACTIVE.with(|a| a.get())
}

/// Runs `f` with `m` active, restoring the previous state afterwards
/// (also on panic).
pub fn with_mutation<T>(m: Mutation, f: impl FnOnce() -> T) -> T {
    struct Restore(Mutation);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_mutation(self.0);
        }
    }
    let _restore = Restore(active());
    set_mutation(m);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_activation_restores() {
        assert_eq!(active(), Mutation::None);
        with_mutation(Mutation::EcpPointerOffByOne, || {
            assert_eq!(active(), Mutation::EcpPointerOffByOne);
            with_mutation(Mutation::SaferPartitionMisMap, || {
                assert_eq!(active(), Mutation::SaferPartitionMisMap);
            });
            assert_eq!(active(), Mutation::EcpPointerOffByOne);
        });
        assert_eq!(active(), Mutation::None);
    }
}
