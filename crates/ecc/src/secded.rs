//! SECDED — Single Error Correction, Double Error Detection — the DRAM
//! incumbent the paper argues *against* for PCM (§II-C).
//!
//! An ECC-DIMM gives 8 check bits per 64 data bits; the classic code is an
//! extended Hamming (72,64): a 7-bit syndrome locates any single flipped
//! bit, an overall parity bit distinguishes single (correctable) from
//! double (detectable only) errors. We implement the full codec and wire
//! it into the [`HardErrorScheme`] interface so lifetime campaigns can
//! quantify the paper's two objections:
//!
//! 1. **SECDED is write-intensive** — every data update rewrites check
//!    bits, so the ECC chip wears as fast as the data chips;
//! 2. **PCM faults accumulate** — SECDED corrects one error per 64-bit
//!    word, so the *second* stuck cell landing in any word kills the line,
//!    whereas ECP-6/SAFER/Aegis keep absorbing faults.
//!
//! For scheme comparability, `write`/`read` here protect the 512 data
//! cells (check bits live on the ninth chip, modelled as healthy — the
//! same assumption the ECP/SAFER/Aegis implementations make about their
//! metadata).

use crate::scheme::{EccError, HardErrorScheme};
use pcm_util::fault::FaultMap;
use pcm_util::Line512;
use serde::{Deserialize, Serialize};

/// Number of 64-bit words per line.
const WORDS: usize = 8;

/// The SECDED scheme over eight (72,64) codewords per line.
///
/// # Examples
///
/// ```
/// use pcm_ecc::{HardErrorScheme, Secded};
///
/// let secded = Secded::new();
/// assert!(secded.can_store(&[0, 64, 128]));   // one fault per word
/// assert!(!secded.can_store(&[0, 1]));        // two faults in word 0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Secded;

/// The eight 8-bit check words of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecdedCode {
    /// `check[w]` protects data word `w`.
    pub check: [u8; WORDS],
}

impl Secded {
    /// Creates the scheme.
    pub fn new() -> Self {
        Secded
    }

    /// Encodes one 64-bit word into its 8 check bits.
    ///
    /// Codeword positions `1..72` use the extended-Hamming layout: check
    /// bits at powers of two (1, 2, 4, 8, 16, 32, 64), the overall parity
    /// at position 0, data bits filling the rest in order.
    pub fn encode_word(data: u64) -> u8 {
        let mut check = 0u8;
        for (i, &p) in CHECK_POSITIONS.iter().enumerate() {
            let mut parity = false;
            for (idx, &pos) in DATA_POSITIONS.iter().enumerate() {
                if (data >> idx) & 1 == 1 && pos & p != 0 {
                    parity = !parity;
                }
            }
            if parity {
                check |= 1 << i;
            }
        }
        // Overall parity over data + the 7 Hamming bits.
        if (data.count_ones() + (check & 0x7F).count_ones()) & 1 == 1 {
            check |= 0x80;
        }
        check
    }

    /// Decodes one word: corrects a single-bit data error, reports double
    /// errors.
    ///
    /// # Errors
    ///
    /// Returns [`WordError::Uncorrectable`] when the syndrome indicates a
    /// double error.
    pub fn decode_word(stored: u64, check: u8) -> Result<u64, WordError> {
        // Syndrome: recomputed Hamming bits against the *received* ones.
        let recomputed = Secded::encode_word(stored) & 0x7F;
        let syndrome_bits = (recomputed ^ check) & 0x7F;
        // Overall parity of the received codeword (data + check bits +
        // parity bit); even when error-free, odd after any single flip.
        let total = stored.count_ones() + (check & 0x7F).count_ones() + ((check >> 7) & 1) as u32;
        let parity_mismatch = total & 1 == 1;
        // Reconstruct the 7-bit syndrome as a codeword position.
        let mut syndrome = 0usize;
        for (i, &p) in CHECK_POSITIONS.iter().enumerate() {
            if syndrome_bits & (1 << i) != 0 {
                syndrome |= p;
            }
        }
        match (syndrome, parity_mismatch) {
            (0, false) => Ok(stored),
            (0, true) => Ok(stored), // error in the parity bit itself
            (s, true) => {
                // Single error at codeword position s: flip if it is a
                // data position (errors in check bits need no data fix).
                if let Some(bit) = data_index_of_position(s) {
                    Ok(stored ^ (1u64 << bit))
                } else {
                    Ok(stored)
                }
            }
            (_, false) => Err(WordError::Uncorrectable),
        }
    }

    /// Stores a line: stuck cells keep their values, the code remembers
    /// the check bits of the *intended* data.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::TooManyFaults`] if any 64-bit word holds more
    /// than one fault whose stuck value disagrees with the data... in the
    /// worst case; the data-independent guarantee is one fault per word.
    pub fn write(
        &self,
        data: &Line512,
        faults: &FaultMap,
    ) -> Result<(Line512, SecdedCode), EccError> {
        let stored = faults.apply(*data);
        // A word is unreadable only when more than one of its faults
        // *disagrees* with the data (agreeing stuck cells cost nothing);
        // the disagreeing cells are exactly where applying the faults
        // changed the data.
        let mismatch = *data ^ stored;
        if mismatch.words().iter().any(|w| w.count_ones() > 1) {
            return Err(EccError::TooManyFaults {
                scheme: self.name(),
                faults: faults.count(),
            });
        }
        let check = std::array::from_fn(|w| Secded::encode_word(data.words()[w]));
        Ok((stored, SecdedCode { check }))
    }

    /// Reads a line back, correcting one wrong bit per word.
    pub fn read(&self, stored: &Line512, code: &SecdedCode) -> Line512 {
        let mut words = stored.words();
        for (w, word) in words.iter_mut().enumerate() {
            if let Ok(fixed) = Secded::decode_word(*word, code.check[w]) {
                *word = fixed;
            }
        }
        Line512::from_words(words)
    }
}

/// Decode failure of one codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordError {
    /// Two or more flipped bits: detected, not correctable.
    Uncorrectable,
}

impl std::fmt::Display for WordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "secded double error detected")
    }
}

impl std::error::Error for WordError {}

/// Check-bit codeword positions (powers of two).
const CHECK_POSITIONS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Codeword position of each data-bit index: the non-power-of-two
/// positions of `3..72`, in order.
const DATA_POSITIONS: [usize; 64] = build_data_positions();

const fn build_data_positions() -> [usize; 64] {
    let mut table = [0usize; 64];
    let mut idx = 0;
    let mut pos = 3;
    while pos < 72 {
        if !(pos as u64).is_power_of_two() {
            table[idx] = pos;
            idx += 1;
        }
        pos += 1;
    }
    table
}

/// Maps data-bit index (0..64) to codeword position.
#[cfg_attr(not(test), allow(dead_code))]
fn position_of_data_index(index: usize) -> usize {
    DATA_POSITIONS[index]
}

/// Inverse of [`position_of_data_index`] (`None` for check/parity
/// positions).
fn data_index_of_position(pos: usize) -> Option<usize> {
    DATA_POSITIONS.iter().position(|&p| p == pos)
}

impl HardErrorScheme for Secded {
    fn name(&self) -> &'static str {
        "SECDED"
    }

    fn guaranteed(&self) -> u32 {
        // Two faults can land in the same 64-bit word.
        1
    }

    fn metadata_bits(&self) -> u32 {
        64
    }

    fn can_store(&self, fault_positions: &[u16]) -> bool {
        let mut per_word = [0u8; WORDS];
        for &pos in fault_positions {
            let w = (pos as usize) / 64;
            per_word[w] += 1;
            if per_word[w] > 1 {
                return false;
            }
        }
        true
    }
}

impl std::fmt::Display for Secded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SECDED")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_util::fault::StuckAt;
    use pcm_util::seeded_rng;
    use rand::RngExt;

    #[test]
    fn clean_words_decode_clean() {
        let mut rng = seeded_rng(61);
        for _ in 0..200 {
            let data: u64 = rng.random();
            let check = Secded::encode_word(data);
            assert_eq!(Secded::decode_word(data, check), Ok(data));
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let mut rng = seeded_rng(62);
        for _ in 0..20 {
            let data: u64 = rng.random();
            let check = Secded::encode_word(data);
            for bit in 0..64 {
                let corrupted = data ^ (1u64 << bit);
                assert_eq!(
                    Secded::decode_word(corrupted, check),
                    Ok(data),
                    "bit {bit} of {data:#x}"
                );
            }
        }
    }

    #[test]
    fn double_bit_errors_are_detected() {
        let mut rng = seeded_rng(63);
        let mut detected = 0;
        let mut trials = 0;
        for _ in 0..20 {
            let data: u64 = rng.random();
            let check = Secded::encode_word(data);
            for (a, b) in [(0usize, 1usize), (5, 40), (62, 63), (10, 33)] {
                let corrupted = data ^ (1u64 << a) ^ (1u64 << b);
                trials += 1;
                if Secded::decode_word(corrupted, check) == Err(WordError::Uncorrectable) {
                    detected += 1;
                }
            }
        }
        assert_eq!(detected, trials, "SECDED must detect all double errors");
    }

    #[test]
    fn position_maps_are_inverse() {
        for idx in 0..64 {
            let pos = position_of_data_index(idx);
            assert_eq!(data_index_of_position(pos), Some(idx));
        }
        assert_eq!(data_index_of_position(1), None);
        assert_eq!(data_index_of_position(64), None);
    }

    #[test]
    fn line_write_read_round_trip_with_one_fault_per_word() {
        let mut rng = seeded_rng(64);
        let secded = Secded::new();
        let faults: FaultMap = (0..8u16)
            .map(|w| StuckAt {
                pos: w * 64 + (w * 7) % 64,
                value: w % 2 == 0,
            })
            .collect();
        for _ in 0..32 {
            let data = Line512::random(&mut rng);
            let (stored, code) = secded.write(&data, &faults).unwrap();
            for f in faults.iter() {
                assert_eq!(stored.bit(f.pos as usize), f.value);
            }
            assert_eq!(secded.read(&stored, &code), data);
        }
    }

    #[test]
    fn second_fault_in_a_word_is_fatal() {
        let secded = Secded::new();
        assert!(!secded.can_store(&[3, 60]));
        // ...unless the data happens to agree with the stuck values.
        let faults: FaultMap = [
            StuckAt {
                pos: 3,
                value: false,
            },
            StuckAt {
                pos: 60,
                value: false,
            },
        ]
        .into_iter()
        .collect();
        assert!(secded.write(&Line512::zero(), &faults).is_ok());
        assert!(secded.write(&Line512::ones(), &faults).is_err());
    }

    #[test]
    fn guarantee_is_one() {
        let s = Secded::new();
        assert_eq!(s.guaranteed(), 1);
        assert_eq!(s.metadata_bits(), 64);
        assert_eq!(s.to_string(), "SECDED");
    }
}
