//! Monte-Carlo fault injection (paper Fig. 9).
//!
//! The experiment: inject `k` stuck-at faults uniformly over a 512-bit
//! block (modelling perfect intra-line wear-leveling), then ask whether a
//! compressed payload of `W` bytes can still be stored somewhere in the
//! block — i.e. whether any byte-aligned window of `W` bytes contains a
//! fault subset the hard-error scheme can mask. Repeating 100 000 times per
//! `(scheme, W, k)` point yields the failure probability
//! (`1 − reliability`) curves of Fig. 9.

use crate::scheme::{count_window_failures, HardErrorScheme};
use pcm_util::simd::LineBatch64;
use pcm_util::{child_seed, seeded_rng, Line512, Pool, BATCH_LANES, DATA_BITS};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Configuration of a Monte-Carlo campaign.
///
/// # Examples
///
/// ```
/// use pcm_ecc::{failure_probability, Ecp, MonteCarlo};
///
/// let mc = MonteCarlo { injections: 2_000, seed: 7, threads: 1 };
/// // Six faults never defeat ECP-6, whatever the window.
/// assert_eq!(failure_probability(&Ecp::new(6), 64, 6, &mc), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonteCarlo {
    /// Number of fault injections per data point (paper: 100 000).
    pub injections: usize,
    /// Seed for reproducible campaigns.
    pub seed: u64,
    /// Worker threads; 0 selects the available parallelism.
    pub threads: usize,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        MonteCarlo {
            injections: 100_000,
            seed: 0x5EED_CA51,
            threads: 0,
        }
    }
}

/// Samples `k` distinct fault positions in `0..512` (partial Fisher–Yates)
/// into the caller-owned `out` buffer, sorted ascending.
fn sample_positions<R: rand::Rng>(
    rng: &mut R,
    k: usize,
    scratch: &mut [u16; DATA_BITS],
    out: &mut Vec<u16>,
) {
    debug_assert!(k <= DATA_BITS);
    for (i, s) in scratch.iter_mut().enumerate() {
        *s = i as u16;
    }
    for i in 0..k {
        let j = rng.random_range(i..DATA_BITS);
        scratch.swap(i, j);
    }
    out.clear();
    out.extend_from_slice(&scratch[..k]);
    out.sort_unstable();
}

/// Estimates the probability that a block with `errors` uniformly-placed
/// faults **cannot** store a `window_bytes`-byte payload under `scheme`.
///
/// This regenerates one point of the paper's Fig. 9.
///
/// # Panics
///
/// Panics if `window_bytes` is outside `1..=64`, `errors > 512`, or
/// `injections == 0`.
pub fn failure_probability(
    scheme: &dyn HardErrorScheme,
    window_bytes: usize,
    errors: usize,
    mc: &MonteCarlo,
) -> f64 {
    failure_probability_on(&Pool::new(mc.threads), scheme, window_bytes, errors, mc)
}

/// [`failure_probability`] on a caller-provided pool; sweeps such as
/// [`failure_surface`] reuse one pool across every `(window, errors)` point
/// so the parallelism is resolved exactly once.
pub(crate) fn failure_probability_on(
    pool: &Pool,
    scheme: &dyn HardErrorScheme,
    window_bytes: usize,
    errors: usize,
    mc: &MonteCarlo,
) -> f64 {
    assert!(errors <= DATA_BITS, "at most 512 faults fit a line");
    assert!(mc.injections > 0, "need at least one injection");

    // Work is split into fixed-size batches of injections seeded by batch
    // index, not by worker id, so the estimate is bit-identical for every
    // thread count (each injection sees the same RNG stream no matter which
    // worker claims its batch, and u64 summation commutes). Within a batch,
    // injections are independent by construction, so they are evaluated in
    // waves of up to `BATCH_LANES`: positions are sampled per injection in
    // RNG order (the stream is unchanged), transposed into `LineBatch64`
    // fault masks, and the whole wave's window search runs through one
    // `count_window_failures` sweep — whose per-lane verdict equals
    // `find_window(..).is_none()` exactly. The shuffle scratch and the
    // wave buffers live in per-worker scratch, reused across every batch a
    // worker claims.
    const BATCH: usize = 1_024;
    let batches = mc.injections.div_ceil(BATCH);

    let per_batch: Vec<u64> = pool.map_indexed_with(
        batches,
        1,
        || {
            (
                [0u16; DATA_BITS],
                Vec::with_capacity(errors),
                Vec::with_capacity(errors * BATCH_LANES),
                Vec::with_capacity(BATCH_LANES),
            )
        },
        |(scratch, positions, wave_positions, lane_ends), c| {
            let lo = c * BATCH;
            let hi = (lo + BATCH).min(mc.injections);
            let mut rng = seeded_rng(child_seed(mc.seed, c as u64));
            let mut fail = 0u64;
            let mut remaining = hi - lo;
            while remaining > 0 {
                let wave = remaining.min(BATCH_LANES);
                let mut masks = LineBatch64::new();
                wave_positions.clear();
                lane_ends.clear();
                for _ in 0..wave {
                    sample_positions(&mut rng, errors, scratch, positions);
                    let mut mask = Line512::zero();
                    for &p in positions.iter() {
                        mask.set_bit(p as usize, true);
                    }
                    masks.push(&mask);
                    wave_positions.extend_from_slice(positions);
                    lane_ends.push(wave_positions.len());
                }
                fail +=
                    count_window_failures(scheme, &masks, wave_positions, lane_ends, window_bytes);
                remaining -= wave;
            }
            fail
        },
    );

    per_batch.into_iter().sum::<u64>() as f64 / mc.injections as f64
}

/// A full Fig. 9 sweep for one scheme: failure probability for every
/// `(window, errors)` combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureSurface {
    /// Scheme name.
    pub scheme: String,
    /// Window sizes swept (bytes).
    pub windows: Vec<usize>,
    /// Error counts swept.
    pub errors: Vec<usize>,
    /// `probabilities[w][e]` for window `windows[w]`, errors `errors[e]`.
    pub probabilities: Vec<Vec<f64>>,
}

/// Sweeps failure probability over windows × error counts (Fig. 9 panel).
pub fn failure_surface(
    scheme: &dyn HardErrorScheme,
    windows: &[usize],
    errors: &[usize],
    mc: &MonteCarlo,
) -> FailureSurface {
    let pool = Pool::new(mc.threads);
    let probabilities = windows
        .iter()
        .map(|&w| {
            errors
                .iter()
                .map(|&e| failure_probability_on(&pool, scheme, w, e, mc))
                .collect()
        })
        .collect();
    FailureSurface {
        scheme: scheme.name().to_string(),
        windows: windows.to_vec(),
        errors: errors.to_vec(),
        probabilities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aegis, Ecp, Safer};

    fn quick_mc() -> MonteCarlo {
        MonteCarlo {
            injections: 3_000,
            seed: 99,
            threads: 2,
        }
    }

    #[test]
    fn ecp6_full_window_steps_at_seven() {
        let ecp = Ecp::new(6);
        let mc = quick_mc();
        assert_eq!(failure_probability(&ecp, 64, 6, &mc), 0.0);
        assert_eq!(failure_probability(&ecp, 64, 7, &mc), 1.0);
    }

    #[test]
    fn smaller_windows_tolerate_more_errors() {
        let ecp = Ecp::new(6);
        let mc = quick_mc();
        // 12 faults kill a full-line write outright but a sliding 16-byte
        // window almost always dodges them.
        assert_eq!(failure_probability(&ecp, 64, 12, &mc), 1.0);
        assert!(failure_probability(&ecp, 16, 12, &mc) < 0.05);
        // At 100 faults the 16-byte window saturates (≈25 faults per
        // window) while a 1-byte window still finds healthy cells.
        let p16 = failure_probability(&ecp, 16, 100, &mc);
        let p1 = failure_probability(&ecp, 1, 100, &mc);
        assert!(p16 > 0.9, "16B window at 100 faults should fail, got {p16}");
        assert!(
            p1 < 0.05,
            "1B window at 100 faults should survive, got {p1}"
        );
    }

    #[test]
    fn safer_and_aegis_beat_ecp_at_full_window() {
        let mc = quick_mc();
        let at = |s: &dyn HardErrorScheme, e| failure_probability(s, 64, e, &mc);
        let (ecp, safer, aegis) = (Ecp::new(6), Safer::new(32), Aegis::new(17, 31));
        // At 10 errors ECP-6 always fails, partition schemes usually don't.
        assert_eq!(at(&ecp, 10), 1.0);
        assert!(
            at(&safer, 10) < 0.8,
            "SAFER should often separate 10 faults"
        );
        assert!(
            at(&aegis, 10) < 0.6,
            "Aegis should usually separate 10 faults"
        );
    }

    #[test]
    fn monotone_in_errors() {
        let safer = Safer::new(32);
        let mc = MonteCarlo {
            injections: 1_500,
            seed: 5,
            threads: 2,
        };
        let mut last = 0.0;
        for errors in [4usize, 12, 20, 28, 36] {
            let p = failure_probability(&safer, 32, errors, &mc);
            assert!(
                p + 0.05 >= last,
                "failure probability should not drop: {p} after {last}"
            );
            last = p;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ecp = Ecp::new(6);
        let mc = MonteCarlo {
            injections: 2_000,
            seed: 123,
            threads: 2,
        };
        let a = failure_probability(&ecp, 24, 10, &mc);
        let b = failure_probability(&ecp, 24, 10, &mc);
        assert_eq!(a, b);
    }

    #[test]
    fn surface_shape() {
        let ecp = Ecp::new(6);
        let mc = MonteCarlo {
            injections: 500,
            seed: 1,
            threads: 1,
        };
        let surf = failure_surface(&ecp, &[16, 64], &[2, 8, 16], &mc);
        assert_eq!(surf.probabilities.len(), 2);
        assert_eq!(surf.probabilities[0].len(), 3);
        assert_eq!(surf.scheme, "ECP-6");
    }

    #[test]
    fn sample_positions_distinct_and_sorted() {
        let mut rng = seeded_rng(8);
        let mut scratch = [0u16; DATA_BITS];
        let mut pos = Vec::new();
        for k in [0usize, 1, 64, 512] {
            sample_positions(&mut rng, k, &mut scratch, &mut pos);
            assert_eq!(pos.len(), k);
            assert!(pos.windows(2).all(|w| w[0] < w[1]), "distinct & sorted");
            assert!(pos.iter().all(|&p| (p as usize) < DATA_BITS));
        }
    }
}
