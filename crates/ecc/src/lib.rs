//! Hard-error tolerance schemes for resistive memories.
//!
//! PCM cells fail *stuck-at* after their write endurance is exhausted, and
//! the fault population grows over time — so PCM needs multi-bit hard-error
//! correction, not DRAM-style SECDED. This crate implements the three
//! schemes the DSN'17 paper evaluates (§II-C), each fitting the 64-bit
//! per-line budget of an ECC-DIMM's ninth chip:
//!
//! * [`Ecp`] — *Error-Correcting Pointers* (Schechter et al., ISCA 2010):
//!   per-fault pointer + replacement bit; ECP-6 corrects any 6 faults in
//!   61 bits of metadata.
//! * [`Safer`] — *Stuck-At-Fault Error Recovery* (Seong et al., MICRO
//!   2010): dynamically partitions the 512 cells into 32 groups by choosing
//!   5 of the 9 position-index bits, then masks one stuck cell per group
//!   with a group inversion bit.
//! * [`Aegis`] — (Fan et al., MICRO 2013): partitions via lines of a 17×31
//!   grid, achieving more correction with fewer partitions.
//!
//! All three implement [`HardErrorScheme`], whose
//! [`can_store`](HardErrorScheme::can_store) answers the question the
//! compression-window controller and the paper's Fig. 9 Monte-Carlo ask:
//! *given these faulty cells inside the written region, can the block hold
//! arbitrary data?* Each scheme also has a concrete encode/decode path
//! (write data around stuck cells, read it back) used by tests to prove the
//! guarantee is real, plus packed metadata codecs in [`layout`] that show
//! everything fits the 64-bit ECC-chip budget.
//!
//! # Examples
//!
//! ```
//! use pcm_ecc::{Ecp, HardErrorScheme};
//!
//! let ecp6 = Ecp::new(6);
//! assert!(ecp6.can_store(&[1, 2, 3, 4, 5, 6]));
//! assert!(!ecp6.can_store(&[1, 2, 3, 4, 5, 6, 7]));
//! ```

pub mod aegis;
pub mod coset;
pub mod ecp;
pub mod layout;
pub mod montecarlo;
#[cfg(feature = "verify-mutations")]
pub mod mutation;
pub mod safer;
pub mod scheme;
pub mod secded;

pub use aegis::Aegis;
pub use coset::Coset;
pub use ecp::Ecp;
pub use montecarlo::{failure_probability, MonteCarlo};
pub use safer::Safer;
pub use scheme::{count_window_failures, find_window, EccError, HardErrorScheme};
pub use secded::Secded;

#[cfg(test)]
mod proptests {
    use super::*;
    use pcm_util::fault::{FaultMap, StuckAt};
    use pcm_util::Line512;
    use proptest::prelude::*;

    fn arb_faults(max: usize) -> impl Strategy<Value = FaultMap> {
        prop::collection::btree_set(0u16..512, 0..=max).prop_flat_map(|positions| {
            let n = positions.len();
            (Just(positions), prop::collection::vec(any::<bool>(), n)).prop_map(
                |(positions, values)| {
                    positions
                        .into_iter()
                        .zip(values)
                        .map(|(pos, value)| StuckAt { pos, value })
                        .collect()
                },
            )
        })
    }

    proptest! {
        /// Any fault set within the deterministic guarantee must round-trip
        /// arbitrary data through every scheme.
        #[test]
        fn guaranteed_faults_round_trip(
            words in prop::array::uniform8(any::<u64>()),
            faults in arb_faults(6),
        ) {
            let data = Line512::from_words(words);
            let schemes: Vec<Box<dyn HardErrorScheme>> = vec![
                Box::new(Ecp::new(6)),
                Box::new(Safer::new(32)),
                Box::new(Aegis::new(17, 31)),
            ];
            for s in &schemes {
                let positions: Vec<u16> = faults.iter().map(|f| f.pos).collect();
                prop_assert!(
                    s.can_store(&positions),
                    "{} must guarantee {} faults", s.name(), positions.len()
                );
            }
            // Concrete round-trips.
            let ecp = Ecp::new(6);
            let (stored, code) = ecp.write(&data, &faults).unwrap();
            prop_assert_eq!(ecp.read(&stored, &code), data);

            let safer = Safer::new(32);
            let (stored, code) = safer.write(&data, &faults).unwrap();
            prop_assert_eq!(safer.read(&stored, &code), data);

            let aegis = Aegis::new(17, 31);
            let (stored, code) = aegis.write(&data, &faults).unwrap();
            prop_assert_eq!(aegis.read(&stored, &code), data);
        }

        /// The physical line always respects stuck cells after a write.
        #[test]
        fn stored_lines_respect_stuck_cells(
            words in prop::array::uniform8(any::<u64>()),
            faults in arb_faults(6),
        ) {
            let data = Line512::from_words(words);
            let safer = Safer::new(32);
            let (stored, _) = safer.write(&data, &faults).unwrap();
            for f in faults.iter() {
                prop_assert_eq!(stored.bit(f.pos as usize), f.value);
            }
        }
    }
}
