//! SAFER: Stuck-At-Fault Error Recovery (Seong et al., MICRO 2010).
//!
//! SAFER exploits the fact that stuck-at faults are *readable*: if a group
//! of cells contains at most one faulty cell, storing the group either
//! as-is or inverted can always make the stuck cell agree with the data.
//! SAFER-*n* partitions the 512 cell positions into `n` groups by selecting
//! `log2(n)` of the 9 position-index bits; the partition is re-chosen
//! dynamically as faults accumulate. SAFER-32 deterministically corrects 6
//! faults and up to 32 probabilistically (paper §II-C).
//!
//! `can_store` performs the oracle feasibility check — *does any of the
//! C(9, k) index-bit subsets isolate every fault in its own group?* — which
//! is what the paper's Monte-Carlo experiment (Fig. 9b) measures.

use crate::scheme::{EccError, HardErrorScheme};
use pcm_util::fault::FaultMap;
use pcm_util::{Line512, DATA_BITS};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

const INDEX_BITS: u32 = 9; // 512 positions

/// The SAFER scheme, parameterized by its group count (a power of two).
///
/// # Examples
///
/// ```
/// use pcm_ecc::{Safer, HardErrorScheme};
///
/// let safer = Safer::new(32);
/// assert_eq!(safer.name(), "SAFER-32");
/// // Any six faults are deterministically separable.
/// assert!(safer.can_store(&[0, 1, 2, 3, 4, 5]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Safer {
    groups: u32,
    /// All `C(9, k)` index-bit subsets, as 9-bit masks.
    subsets: Vec<u16>,
    /// Per subset, per group: the mask of line positions in that group
    /// (precomputed so a write's inversion pass is a handful of XORs).
    group_masks: Vec<Vec<Line512>>,
}

/// The per-line SAFER state: the chosen index-bit subset and the per-group
/// inversion bits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaferCode {
    /// 9-bit mask selecting the partition's index bits.
    pub subset_mask: u16,
    /// Inversion flag for each group (length = group count).
    pub inversions: Vec<bool>,
}

/// Extracts the bits of `pos` selected by `mask`, packed densely
/// (a software PEXT).
fn extract_group(pos: u16, mask: u16) -> usize {
    let mut out = 0usize;
    let mut out_bit = 0;
    for b in 0..INDEX_BITS {
        if mask >> b & 1 == 1 {
            out |= (((pos >> b) & 1) as usize) << out_bit;
            out_bit += 1;
        }
    }
    out
}

fn subsets_of_size(k: u32) -> Vec<u16> {
    (0u16..1 << INDEX_BITS)
        .filter(|m| m.count_ones() == k)
        .collect()
}

/// Partition-search acceleration tables for one subset size `k`, shared by
/// every `Safer` instance with the same group count (the tables depend only
/// on `subsets_of_size(k)`, which is deterministic).
struct SubsetTables {
    /// For every 9-bit XOR value `v`: the bitset (over the subset list, in
    /// order) of subsets with `mask & v != 0` — i.e. the subsets that put a
    /// pair of positions differing by `v` into *different* groups. At most
    /// `C(9, 4) = 126` subsets exist, so two words suffice.
    separators: Vec<[u64; 2]>,
    /// Maps a subset mask back to its index in the subset list.
    index_of: [u8; 1 << INDEX_BITS],
}

fn subset_tables(k: u32) -> &'static SubsetTables {
    static TABLES: [OnceLock<SubsetTables>; 9] = [const { OnceLock::new() }; 9];
    TABLES[k as usize].get_or_init(|| {
        let subsets = subsets_of_size(k);
        let mut index_of = [0u8; 1 << INDEX_BITS];
        for (i, &mask) in subsets.iter().enumerate() {
            index_of[mask as usize] = i as u8;
        }
        let separators = (0..1u16 << INDEX_BITS)
            .map(|v| {
                let mut bits = [0u64; 2];
                for (i, &mask) in subsets.iter().enumerate() {
                    if mask & v != 0 {
                        bits[i / 64] |= 1 << (i % 64);
                    }
                }
                bits
            })
            .collect();
        SubsetTables {
            separators,
            index_of,
        }
    })
}

impl Safer {
    /// Creates a SAFER scheme with `groups` groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is not a power of two in `2..=256`.
    pub fn new(groups: u32) -> Self {
        assert!(
            groups.is_power_of_two() && (2..=256).contains(&groups),
            "SAFER group count must be a power of two in 2..=256, got {groups}"
        );
        let k = groups.trailing_zeros();
        let subsets = subsets_of_size(k);
        let group_masks = subsets
            .iter()
            .map(|&mask| {
                let mut per_group = vec![Line512::zero(); groups as usize];
                for pos in 0..DATA_BITS {
                    per_group[extract_group(pos as u16, mask)].set_bit(pos, true);
                }
                per_group
            })
            .collect();
        Safer {
            groups,
            subsets,
            group_masks,
        }
    }

    /// Number of groups.
    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// Finds an index-bit subset that puts every fault in its own group.
    ///
    /// Returns the subset mask, or `None` if no partition isolates all
    /// faults.
    pub fn find_partition(&self, fault_positions: &[u16]) -> Option<u16> {
        if fault_positions.len() as u32 > self.groups {
            return None;
        }
        // Two positions land in the same group exactly when the subset
        // selects none of the bits where they differ: `(a ^ b) & mask == 0`.
        // So a subset isolates every fault iff it separates every *pair*;
        // intersect the precomputed per-pair separator sets and return the
        // first survivor, which is the same subset the direct first-match
        // scan over `self.subsets` would have found.
        let tables = subset_tables(self.groups.trailing_zeros());
        let mut alive = [u64::MAX; 2];
        for (i, &a) in fault_positions.iter().enumerate() {
            for &b in &fault_positions[i + 1..] {
                let sep = &tables.separators[(a ^ b) as usize];
                alive[0] &= sep[0];
                alive[1] &= sep[1];
                if alive == [0, 0] {
                    return None;
                }
            }
        }
        let idx = if alive[0] != 0 {
            alive[0].trailing_zeros() as usize
        } else {
            64 + alive[1].trailing_zeros() as usize
        };
        // In range by construction: with at least one pair, `alive` is a
        // subset of a separator entry (no bits past the subset count); with
        // none, it is all-ones and `idx` is 0.
        self.subsets.get(idx).copied()
    }

    /// Stores `data` into a line with the given faults.
    ///
    /// Chooses a partition isolating every fault (falling back to any
    /// partition whose same-group faults happen to *agree* on the required
    /// inversion for this data, which lets SAFER opportunistically survive
    /// beyond its guarantee), computes the per-group inversion bits, and
    /// returns the physical line plus the [`SaferCode`].
    ///
    /// # Errors
    ///
    /// Returns [`EccError::TooManyFaults`] when no partition works for this
    /// data.
    pub fn write(
        &self,
        data: &Line512,
        faults: &FaultMap,
    ) -> Result<(Line512, SaferCode), EccError> {
        let positions: Vec<u16> = faults.iter().map(|f| f.pos).collect();
        // Prefer a deterministic partition; otherwise try data-dependent
        // agreement.
        let chosen = self
            .find_partition(&positions)
            .or_else(|| self.find_agreeing_partition(data, faults));
        let Some(mask) = chosen else {
            return Err(EccError::TooManyFaults {
                scheme: self.name(),
                faults: faults.count(),
            });
        };
        let inversions = self
            .inversions_for(mask, data, faults)
            .expect("partition was validated");
        let stored = faults.apply(self.transform(data, mask, &inversions));
        Ok((
            stored,
            SaferCode {
                subset_mask: mask,
                inversions,
            },
        ))
    }

    /// Reconstructs the original data from a physical line and its code.
    pub fn read(&self, stored: &Line512, code: &SaferCode) -> Line512 {
        #[cfg(feature = "verify-mutations")]
        if crate::mutation::active() == crate::mutation::Mutation::SaferPartitionMisMap {
            // Un-invert with the *next* subset in the table: cells land in
            // the wrong groups whenever any group is inverted.
            let idx = self
                .subsets
                .iter()
                .position(|&m| m == code.subset_mask)
                .expect("mask comes from this scheme's subset list");
            let wrong = self.subsets[(idx + 1) % self.subsets.len()];
            return self.transform(stored, wrong, &code.inversions);
        }
        // Inversion is an involution: applying the same per-group flips
        // recovers the data, and stuck cells were made to agree at write.
        self.transform(stored, code.subset_mask, &code.inversions)
    }

    /// Applies per-group inversions to a line (a XOR per inverted group).
    fn transform(&self, line: &Line512, mask: u16, inversions: &[bool]) -> Line512 {
        debug_assert!(
            self.subsets.contains(&mask),
            "mask comes from this scheme's subset list"
        );
        let idx = subset_tables(self.groups.trailing_zeros()).index_of[mask as usize] as usize;
        let mut out = *line;
        for (g, &inv) in inversions.iter().enumerate() {
            if inv {
                out = out ^ self.group_masks[idx][g];
            }
        }
        out
    }

    /// Computes the inversion bit per group so every stuck cell matches the
    /// data; `None` if two faults in one group disagree.
    fn inversions_for(&self, mask: u16, data: &Line512, faults: &FaultMap) -> Option<Vec<bool>> {
        // pcm-audit: allow(hotpath-alloc) — the inversion vector is the stored per-line code word, not scratch; it escapes into SaferCode
        let mut inversions = vec![false; self.groups as usize];
        // Dense "group already constrained" bitmap over at most 256 groups.
        let mut fixed = [0u64; 4];
        for f in faults.iter() {
            let g = extract_group(f.pos, mask);
            let needed = data.bit(f.pos as usize) != f.value;
            if fixed[g / 64] >> (g % 64) & 1 == 1 && inversions[g] != needed {
                return None;
            }
            inversions[g] = needed;
            fixed[g / 64] |= 1 << (g % 64);
        }
        Some(inversions)
    }

    fn find_agreeing_partition(&self, data: &Line512, faults: &FaultMap) -> Option<u16> {
        self.subsets
            .iter()
            .copied()
            .find(|&mask| self.inversions_for(mask, data, faults).is_some())
    }
}

impl HardErrorScheme for Safer {
    fn name(&self) -> &'static str {
        match self.groups {
            32 => "SAFER-32",
            _ => "SAFER",
        }
    }

    fn guaranteed(&self) -> u32 {
        // SAFER-32's deterministic guarantee (MICRO'10): 6 faults.
        // More generally k+1 for 2^k groups.
        self.groups.trailing_zeros() + 1
    }

    fn metadata_bits(&self) -> u32 {
        // Group inversion bits + partition selector (log2 C(9,k) rounded up).
        let k = self.groups.trailing_zeros();
        let choices = self.subsets.len() as u32;
        let selector = 32 - (choices - 1).leading_zeros();
        let _ = k;
        self.groups + selector
    }

    fn can_store(&self, fault_positions: &[u16]) -> bool {
        self.find_partition(fault_positions).is_some()
    }
}

impl std::fmt::Display for Safer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SAFER-{}", self.groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_util::fault::StuckAt;
    use pcm_util::seeded_rng;
    use rand::seq::SliceRandom;

    #[test]
    fn six_faults_always_separable() {
        // MICRO'10 guarantee: any 6 faults are separable by some subset.
        let mut rng = seeded_rng(31);
        let safer = Safer::new(32);
        let mut all: Vec<u16> = (0..512).collect();
        for _ in 0..200 {
            all.shuffle(&mut rng);
            let faults = &all[..6];
            assert!(safer.can_store(faults), "faults {faults:?} not separable");
        }
    }

    #[test]
    fn more_than_32_faults_never_fit() {
        let safer = Safer::new(32);
        let faults: Vec<u16> = (0..33).collect();
        assert!(!safer.can_store(&faults));
    }

    #[test]
    fn adversarial_faults_can_defeat_safer() {
        // 16 faults that share the low 4 index bits pairwise collide in many
        // partitions; two positions differing in *no* selectable way must
        // fail. Positions that agree on every subset of 5 bits can't exist
        // (they'd be equal), but clustered positions sharing 8 of 9 bits
        // stress the search. Verify the checker at least degrades:
        let safer = Safer::new(32);
        // Positions 0..16 all share bits 4..9 = 0; separability requires the
        // subset to include enough low bits.
        let close: Vec<u16> = (0..16).collect();
        // With 5 selectable bits and 16 faults in a 16-position cube, the
        // subset must cover all 4 low bits; C(5 of 9) includes such subsets,
        // so this *is* separable.
        assert!(safer.can_store(&close));
        // But 17 faults inside a 16-position cube are pigeonhole-infeasible
        // for any 4-bit-distinguishing subset... position 16 differs in bit 4.
        let mut seventeen = close.clone();
        seventeen.push(16);
        // Can't assert infeasible a priori; just exercise the search.
        let _ = safer.can_store(&seventeen);
    }

    #[test]
    fn write_read_round_trip_beyond_ecp_capacity() {
        let mut rng = seeded_rng(32);
        let safer = Safer::new(32);
        // 20 spread-out faults: deterministically separable positions
        // (distinct high bits).
        let faults: FaultMap = (0..20u16)
            .map(|i| StuckAt {
                pos: i * 25,
                value: i % 2 == 0,
            })
            .collect();
        let positions: Vec<u16> = faults.iter().map(|f| f.pos).collect();
        if safer.can_store(&positions) {
            for _ in 0..16 {
                let data = Line512::random(&mut rng);
                let (stored, code) = safer.write(&data, &faults).unwrap();
                for f in faults.iter() {
                    assert_eq!(stored.bit(f.pos as usize), f.value, "stuck cell respected");
                }
                assert_eq!(safer.read(&stored, &code), data);
            }
        } else {
            panic!("20 spread faults should be separable");
        }
    }

    #[test]
    fn group_extraction_is_dense() {
        // mask with bits 0 and 8 selected: pos 0b1_0000_0001 -> group 0b11.
        assert_eq!(extract_group(0b1_0000_0001, 0b1_0000_0001), 0b11);
        assert_eq!(extract_group(0b1_0000_0000, 0b1_0000_0001), 0b10);
        assert_eq!(extract_group(0b0_0000_0001, 0b1_0000_0001), 0b01);
    }

    #[test]
    fn subset_count_matches_binomial() {
        let safer = Safer::new(32);
        assert_eq!(safer.subsets.len(), 126); // C(9,5)
        let safer4 = Safer::new(4);
        assert_eq!(safer4.subsets.len(), 36); // C(9,2)
    }

    #[test]
    fn metadata_fits_ecc_chip() {
        let safer = Safer::new(32);
        assert!(
            safer.metadata_bits() <= 64,
            "{} bits",
            safer.metadata_bits()
        );
    }

    #[test]
    fn opportunistic_agreement_beyond_guarantee() {
        // Two faults forced into the same group for every partition choice
        // can still work when their required inversions agree. Build a case:
        // all-zero data, two stuck-at-0 cells anywhere — inversion false
        // works for every group, so write must succeed even if inseparable.
        let safer = Safer::new(2); // 1 index bit: easy to collide
        let faults: FaultMap = [
            StuckAt {
                pos: 0,
                value: false,
            },
            StuckAt {
                pos: 2,
                value: false,
            }, // same bit-0 parity as pos 0
            StuckAt {
                pos: 4,
                value: false,
            },
        ]
        .into_iter()
        .collect();
        let data = Line512::zero();
        let (stored, code) = safer.write(&data, &faults).unwrap();
        assert_eq!(safer.read(&stored, &code), data);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        Safer::new(12);
    }
}
