//! Fine-grain restricted coset coding over ECP-6
//! (Seyedzadeh et al., arXiv:1711.08572).
//!
//! Coset coding stores one of several equivalent *candidate vectors* —
//! the payload XORed with a coset mask — and records which mask was used
//! in a small tag. Picking the candidate that (a) flips the fewest cells
//! relative to the line's current contents and (b) agrees with the most
//! stuck cells both extends endurance (fewer flips per write) and eases
//! the correction scheme's job. The *restricted* variant keeps the tag
//! tiny: here 3 bits, exactly the slack ECP-6 leaves in the 64-bit
//! ECC-chip budget (61 + 3 = 64) — the collaborative-budget idea applied
//! to coset selection instead of stronger pointers.
//!
//! The three generators partition the line's eight 64-bit words
//! round-robin (word `w` belongs to generator `w mod 3`); the eight masks
//! are the XOR combinations, so tag 0 is the identity and tag 7 inverts
//! the whole line. Selection scores each candidate on the bits inside the
//! active compression window only — everything outside is never written.

use crate::ecp::{Ecp, EcpCode};
use crate::scheme::{EccError, HardErrorScheme};
use pcm_util::fault::FaultMap;
use pcm_util::Line512;

/// Extra cost charged per stuck cell a candidate disagrees with, in
/// flip-equivalents. High enough that selection steers writes toward
/// agreeing with faulty cells when the flip counts are close.
const MISMATCH_PENALTY: u32 = 16;

/// Restricted coset coding layered over ECP-6.
///
/// # Examples
///
/// ```
/// use pcm_ecc::{Coset, HardErrorScheme};
///
/// let coset = Coset::new();
/// assert_eq!(coset.metadata_bits(), 64); // 61 ECP + 3 tag bits
/// assert_eq!(coset.transform_bits(), 3);
/// assert_eq!(coset.guaranteed(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct Coset {
    inner: Ecp,
    /// The eight coset masks, indexed by tag.
    masks: [Line512; 8],
}

impl Coset {
    /// Creates the restricted coset scheme (3 tag bits over ECP-6).
    pub fn new() -> Self {
        let generators: [Line512; 3] =
            std::array::from_fn(|g| Line512::from_fn(|bit| (bit / 64) % 3 == g));
        let masks = std::array::from_fn(|tag| {
            let mut m = Line512::zero();
            for (g, generator) in generators.iter().enumerate() {
                if tag & (1 << g) != 0 {
                    m = m ^ *generator;
                }
            }
            m
        });
        Coset {
            inner: Ecp::new(6),
            masks,
        }
    }

    /// The coset mask for a tag.
    ///
    /// # Panics
    ///
    /// Panics if `tag >= 8`.
    pub fn mask(&self, tag: u16) -> Line512 {
        self.masks[tag as usize]
    }

    /// The underlying pointer-correction scheme.
    pub fn inner(&self) -> &Ecp {
        &self.inner
    }

    /// Scores candidate `tag` for writing `target` over `stored`:
    /// `flips + MISMATCH_PENALTY × stuck-cell disagreements`, counted
    /// inside the window only.
    fn cost(
        &self,
        tag: u16,
        target: &Line512,
        stored: &Line512,
        window_mask: &Line512,
        faults: &FaultMap,
    ) -> u32 {
        let candidate = *target ^ self.masks[tag as usize];
        let written = faults.apply(candidate);
        let flips = ((written ^ *stored) & *window_mask).count_ones();
        let mismatches = ((written ^ candidate) & *window_mask).count_ones();
        flips + MISMATCH_PENALTY * mismatches
    }

    /// Stores `data` (already coset-transformed) like ECP-6 does.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::TooManyFaults`] when the fault count exceeds
    /// the ECP entry budget.
    pub fn write(&self, data: &Line512, faults: &FaultMap) -> Result<(Line512, EcpCode), EccError> {
        self.inner.write(data, faults)
    }

    /// Reconstructs the transformed line from a physical line and its code
    /// (apply [`decode_payload`](HardErrorScheme::decode_payload) after).
    pub fn read(&self, stored: &Line512, code: &EcpCode) -> Line512 {
        self.inner.read(stored, code)
    }
}

impl Default for Coset {
    fn default() -> Self {
        Coset::new()
    }
}

impl HardErrorScheme for Coset {
    fn name(&self) -> &'static str {
        "Coset-ECP6"
    }

    fn guaranteed(&self) -> u32 {
        self.inner.guaranteed()
    }

    fn metadata_bits(&self) -> u32 {
        self.inner.metadata_bits() + self.transform_bits()
    }

    fn can_store(&self, fault_positions: &[u16]) -> bool {
        self.inner.can_store(fault_positions)
    }

    fn transform_bits(&self) -> u32 {
        3
    }

    fn encode_payload(
        &self,
        target: &Line512,
        stored: &Line512,
        window_mask: &Line512,
        faults: &FaultMap,
    ) -> (Line512, u16) {
        let mut best_tag = 0u16;
        let mut best_cost = self.cost(0, target, stored, window_mask, faults);
        for tag in 1..8u16 {
            let cost = self.cost(tag, target, stored, window_mask, faults);
            if cost < best_cost {
                best_cost = cost;
                best_tag = tag;
            }
        }
        (*target ^ self.masks[best_tag as usize], best_tag)
    }

    fn decode_payload(&self, corrected: &Line512, tag: u16) -> Line512 {
        *corrected ^ self.masks[tag as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_util::fault::StuckAt;
    use pcm_util::{seeded_rng, DATA_BYTES};
    use rand::Rng;

    fn full_mask() -> Line512 {
        Line512::byte_window_mask(0, DATA_BYTES)
    }

    #[test]
    fn masks_form_a_group_and_cover_the_line() {
        let c = Coset::new();
        assert!(c.mask(0).is_zero(), "tag 0 is the identity");
        assert_eq!(c.mask(7).count_ones(), 512, "tag 7 inverts everything");
        for a in 0..8u16 {
            for b in 0..8u16 {
                assert_eq!(c.mask(a) ^ c.mask(b), c.mask(a ^ b));
            }
        }
    }

    #[test]
    fn round_trip_through_ecp_and_tag() {
        let c = Coset::new();
        let mut rng = seeded_rng(31);
        for _ in 0..64 {
            let target = Line512::random(&mut rng);
            let stored = Line512::random(&mut rng);
            let faults: FaultMap = (0..5)
                .map(|_| StuckAt {
                    pos: (rng.next_u64() % 512) as u16,
                    value: rng.next_u64() & 1 == 1,
                })
                .collect();
            let (transformed, tag) = c.encode_payload(&target, &stored, &full_mask(), &faults);
            assert!(tag < 8);
            let (phys, code) = c.write(&transformed, &faults).unwrap();
            let corrected = c.read(&phys, &code);
            assert_eq!(c.decode_payload(&corrected, tag), target);
        }
    }

    #[test]
    fn golden_inverted_line_selects_the_full_mask() {
        // Target all-zeros over a stored all-ones line: tag 7 (invert
        // everything) stores the line verbatim with zero flips.
        let c = Coset::new();
        let target = Line512::zero();
        let stored = !Line512::zero();
        let (transformed, tag) = c.encode_payload(&target, &stored, &full_mask(), &FaultMap::new());
        assert_eq!(tag, 7);
        assert_eq!(transformed, stored, "chosen candidate rewrites nothing");
        assert_eq!(c.decode_payload(&transformed, tag), target);
    }

    #[test]
    fn golden_identity_when_nothing_to_gain() {
        // Writing a line over itself: tag 0 has zero cost and wins ties.
        let c = Coset::new();
        let mut rng = seeded_rng(33);
        let target = Line512::random(&mut rng);
        let (transformed, tag) = c.encode_payload(&target, &target, &full_mask(), &FaultMap::new());
        assert_eq!(tag, 0);
        assert_eq!(transformed, target);
    }

    #[test]
    fn golden_stuck_cells_steer_selection_away_from_conflicts() {
        // Window = word 0. Four cells stuck at 0 conflict with the
        // all-ones target: writing it verbatim costs 0 flips but 4
        // conflicts; the inverted candidate (tag 1 on word 0) costs 60
        // flips and no conflicts. With the mismatch penalty the inverted
        // vector wins — selection dodges the faulty cells.
        let c = Coset::new();
        let window = Line512::byte_window_mask(0, 8);
        let faults: FaultMap = (0..4u16).map(|pos| StuckAt { pos, value: false }).collect();
        // Stored state: the previous all-ones write, stuck cells reading 0.
        let stored = faults.apply(!Line512::zero());
        let target = !Line512::zero();
        let (transformed, tag) = c.encode_payload(&target, &stored, &window, &faults);
        assert_eq!(tag, 1, "inverted word-0 candidate avoids the stuck cells");
        // In-window bits are inverted; the candidate agrees with every
        // stuck cell, so nothing is written against a fault.
        for pos in 0..4usize {
            assert!(!transformed.bit(pos), "stuck-at-0 cell written with 1");
        }
        let (phys, code) = c.write(&transformed, &faults).unwrap();
        assert_eq!(
            c.decode_payload(&c.read(&phys, &code), tag),
            target,
            "payload round-trips through the stuck cells"
        );
    }

    #[test]
    fn golden_out_of_window_state_is_ignored() {
        // Tags whose masks only differ outside the window cost the same;
        // the lowest tag must win for deterministic metadata.
        let c = Coset::new();
        let window = Line512::byte_window_mask(0, 8); // word 0 only
        let target = Line512::zero();
        let stored = Line512::zero();
        // Tags 0, 2, 4, 6 are in-window identical (generators 1 and 2
        // do not touch word 0): tag 0 must be chosen.
        let (_, tag) = c.encode_payload(&target, &stored, &window, &FaultMap::new());
        assert_eq!(tag, 0);
    }

    #[test]
    fn metadata_fits_the_ecc_chip_budget_exactly() {
        let c = Coset::new();
        assert_eq!(c.metadata_bits(), 64);
        assert_eq!(c.transform_bits(), 3);
        assert_eq!(c.name(), "Coset-ECP6");
    }
}
