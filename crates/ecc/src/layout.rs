//! Packed metadata codecs: proof that every scheme's per-line state fits
//! the 64-bit ECC-chip budget of an ECC-DIMM (paper §II-A, §III-B).
//!
//! | scheme      | layout                                              | bits |
//! |-------------|-----------------------------------------------------|------|
//! | ECP-6       | 6 × (9-bit pointer + 1 replacement bit) + count     | 61   |
//! | SAFER-32    | 7-bit subset index + 32 inversion bits              | 39   |
//! | Aegis 17×31 | 5-bit partition id + 31 inversion bits              | 36   |
//!
//! ECP-6 leaves three spare bits; the paper dedicates one of them to the
//! per-line *compressed* flag, so compression metadata costs no extra
//! storage on the ECC chip.

use crate::aegis::AegisCode;
use crate::ecp::EcpCode;
use crate::safer::SaferCode;

/// Bits used by the packed ECP-6 code.
pub const ECP6_BITS: u32 = 61;
/// Bits used by the packed SAFER-32 code.
pub const SAFER32_BITS: u32 = 39;
/// Bits used by the packed Aegis 17×31 code.
pub const AEGIS_17X31_BITS: u32 = 36;

/// Error returned when unpacking malformed metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnpackError(pub &'static str);

impl std::fmt::Display for UnpackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "metadata unpack failed: {}", self.0)
    }
}

impl std::error::Error for UnpackError {}

/// Packs an ECP-6 code into its 61-bit layout:
/// bits `[0,60)` hold six 10-bit entries (9-bit pointer, 1 replacement bit),
/// bits `[60]`.. unused entries are marked by pointer `0x1FF` with
/// replacement 1 (an otherwise impossible all-ones sentinel is avoided by
/// storing the entry count in the top 3 bits instead).
///
/// Layout: `count (3 bits) << 60 | entries`, entry `i` at `i * 10`.
///
/// # Errors
///
/// Returns [`UnpackError`] if more than six pairs are present.
pub fn pack_ecp6(code: &EcpCode) -> Result<u64, UnpackError> {
    let pairs = code.pairs();
    if pairs.len() > 6 {
        return Err(UnpackError("ECP-6 holds at most six entries"));
    }
    let mut word = (pairs.len() as u64) << 60;
    for (i, &(pos, bit)) in pairs.iter().enumerate() {
        let entry = ((pos as u64) << 1) | bit as u64;
        word |= entry << (i * 10);
    }
    Ok(word)
}

/// Unpacks a 61-bit ECP-6 code.
///
/// # Errors
///
/// Returns [`UnpackError`] if the count field exceeds six.
pub fn unpack_ecp6(word: u64) -> Result<EcpCode, UnpackError> {
    let count = (word >> 60) as usize;
    if count > 6 {
        return Err(UnpackError("ECP-6 count field exceeds six"));
    }
    let mut pairs = Vec::with_capacity(count);
    for i in 0..count {
        let entry = (word >> (i * 10)) & 0x3FF;
        let pos = (entry >> 1) as u16;
        let bit = entry & 1 == 1;
        pairs.push((pos, bit));
    }
    Ok(EcpCode::from_pairs(pairs))
}

/// Packs a SAFER-32 code: subset index (7 bits, an index into the canonical
/// ordering of the 126 subsets) then 32 inversion bits.
///
/// # Errors
///
/// Returns [`UnpackError`] if the subset mask is not a valid 5-of-9 mask or
/// the inversion vector is not 32 long.
pub fn pack_safer32(code: &SaferCode) -> Result<u64, UnpackError> {
    if code.inversions.len() != 32 {
        return Err(UnpackError("SAFER-32 needs exactly 32 inversion bits"));
    }
    let index = subset_index(code.subset_mask).ok_or(UnpackError("invalid SAFER subset mask"))?;
    let mut word = index as u64;
    for (i, &inv) in code.inversions.iter().enumerate() {
        word |= (inv as u64) << (7 + i);
    }
    Ok(word)
}

/// Unpacks a 39-bit SAFER-32 code.
///
/// # Errors
///
/// Returns [`UnpackError`] if the subset index is out of range.
pub fn unpack_safer32(word: u64) -> Result<SaferCode, UnpackError> {
    let index = (word & 0x7F) as usize;
    let mask = subset_from_index(index).ok_or(UnpackError("SAFER subset index out of range"))?;
    let inversions = (0..32).map(|i| (word >> (7 + i)) & 1 == 1).collect();
    Ok(SaferCode {
        subset_mask: mask,
        inversions,
    })
}

/// Packs an Aegis 17×31 code: partition id (5 bits) then 31 inversion bits.
///
/// # Errors
///
/// Returns [`UnpackError`] if the partition id exceeds 17 or the inversion
/// vector is longer than 31.
pub fn pack_aegis_17x31(code: &AegisCode) -> Result<u64, UnpackError> {
    if code.partition > 17 {
        return Err(UnpackError("Aegis 17x31 partition id exceeds 17"));
    }
    if code.inversions.len() > 31 {
        return Err(UnpackError("Aegis 17x31 holds at most 31 inversion bits"));
    }
    let mut word = code.partition as u64;
    for (i, &inv) in code.inversions.iter().enumerate() {
        word |= (inv as u64) << (5 + i);
    }
    Ok(word)
}

/// Unpacks a 36-bit Aegis 17×31 code.
///
/// # Errors
///
/// Returns [`UnpackError`] if the partition id exceeds 17.
pub fn unpack_aegis_17x31(word: u64) -> Result<AegisCode, UnpackError> {
    let partition = (word & 0x1F) as u32;
    if partition > 17 {
        return Err(UnpackError("Aegis 17x31 partition id exceeds 17"));
    }
    let inversions = (0..31).map(|i| (word >> (5 + i)) & 1 == 1).collect();
    Ok(AegisCode {
        partition,
        inversions,
    })
}

/// Canonical index of a 5-of-9 subset mask (ascending mask order).
fn subset_index(mask: u16) -> Option<usize> {
    if mask >= 1 << 9 || mask.count_ones() != 5 {
        return None;
    }
    let mut idx = 0;
    for m in 0u16..mask {
        if m.count_ones() == 5 {
            idx += 1;
        }
    }
    Some(idx)
}

/// Inverse of [`subset_index`].
fn subset_from_index(index: usize) -> Option<u16> {
    (0u16..1 << 9).filter(|m| m.count_ones() == 5).nth(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecp6_round_trip() {
        let code = EcpCode::from_pairs(vec![(0, true), (511, false), (256, true)]);
        let word = pack_ecp6(&code).unwrap();
        assert!(word >> ECP6_BITS <= 0b111, "fits 61+3 bits");
        assert_eq!(unpack_ecp6(word).unwrap(), code);
    }

    #[test]
    fn ecp6_empty_and_full() {
        let empty = EcpCode::default();
        assert_eq!(unpack_ecp6(pack_ecp6(&empty).unwrap()).unwrap(), empty);
        let full = EcpCode::from_pairs((0..6).map(|i| (i * 85, i % 2 == 0)).collect());
        assert_eq!(unpack_ecp6(pack_ecp6(&full).unwrap()).unwrap(), full);
    }

    #[test]
    fn ecp6_rejects_seven() {
        let code = EcpCode::from_pairs((0..7).map(|i| (i, true)).collect());
        assert!(pack_ecp6(&code).is_err());
    }

    #[test]
    fn safer32_round_trip() {
        let mask = 0b0_0001_1111; // lowest five bits: a valid 5-of-9 subset
        let code = SaferCode {
            subset_mask: mask,
            inversions: (0..32).map(|i| i % 3 == 0).collect(),
        };
        let word = pack_safer32(&code).unwrap();
        assert!(word < 1 << SAFER32_BITS);
        assert_eq!(unpack_safer32(word).unwrap(), code);
    }

    #[test]
    fn safer32_all_subsets_round_trip() {
        let mut count = 0;
        for mask in 0u16..1 << 9 {
            if mask.count_ones() == 5 {
                let idx = subset_index(mask).unwrap();
                assert_eq!(subset_from_index(idx), Some(mask));
                count += 1;
            }
        }
        assert_eq!(count, 126);
        assert_eq!(subset_from_index(126), None);
    }

    #[test]
    fn safer32_rejects_bad_mask() {
        let code = SaferCode {
            subset_mask: 0b11,
            inversions: vec![false; 32],
        };
        assert!(pack_safer32(&code).is_err());
    }

    #[test]
    fn aegis_round_trip() {
        for partition in [0u32, 5, 17] {
            let code = AegisCode {
                partition,
                inversions: (0..31).map(|i| i % 2 == 1).collect(),
            };
            let word = pack_aegis_17x31(&code).unwrap();
            assert!(word < 1 << AEGIS_17X31_BITS);
            assert_eq!(unpack_aegis_17x31(word).unwrap(), code);
        }
    }

    #[test]
    fn aegis_rejects_bad_partition() {
        let code = AegisCode {
            partition: 18,
            inversions: vec![false; 31],
        };
        assert!(pack_aegis_17x31(&code).is_err());
        assert!(unpack_aegis_17x31(18).is_err());
    }

    #[test]
    fn budgets_fit_ecc_chip() {
        assert!(ECP6_BITS <= 64);
        assert!(SAFER32_BITS <= 64);
        assert!(AEGIS_17X31_BITS <= 64);
        // ECP-6 spare bits host the compressed flag (paper §III-B).
        assert!(64 - ECP6_BITS >= 1);
    }
}
