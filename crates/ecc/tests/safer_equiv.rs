//! Equivalence suite for SAFER's accelerated partition search.
//!
//! `Safer::find_partition` intersects precomputed pairwise-separator
//! bitsets; the reference here is the definitional algorithm: scan the
//! `C(9, k)` index-bit subsets in ascending mask order and return the
//! first one that places every fault in its own group (software-PEXT
//! group extraction, dense seen-group bitmap). The two must agree on the
//! exact chosen mask, not merely on feasibility.

use pcm_ecc::{HardErrorScheme, Safer};
use proptest::prelude::*;

const INDEX_BITS: u32 = 9;

fn extract_group(pos: u16, mask: u16) -> usize {
    let mut out = 0usize;
    let mut out_bit = 0;
    for b in 0..INDEX_BITS {
        if mask >> b & 1 == 1 {
            out |= (((pos >> b) & 1) as usize) << out_bit;
            out_bit += 1;
        }
    }
    out
}

/// The original first-match subset scan.
fn ref_find_partition(groups: u32, fault_positions: &[u16]) -> Option<u16> {
    if fault_positions.len() as u32 > groups {
        return None;
    }
    let k = groups.trailing_zeros();
    let subsets: Vec<u16> = (0u16..1 << INDEX_BITS)
        .filter(|m| m.count_ones() == k)
        .collect();
    if fault_positions.is_empty() {
        return subsets.first().copied();
    }
    'subset: for &mask in &subsets {
        let mut seen = [0u64; 4];
        for &pos in fault_positions {
            let g = extract_group(pos, mask);
            let (word, bit) = (g / 64, g % 64);
            if seen[word] >> bit & 1 == 1 {
                continue 'subset;
            }
            seen[word] |= 1 << bit;
        }
        return Some(mask);
    }
    None
}

/// Distinct fault positions, biased toward clustered (hard-to-separate)
/// layouts as well as uniform spreads.
fn arb_positions() -> impl Strategy<Value = Vec<u16>> {
    let uniform = prop::collection::btree_set(0u16..512, 0..40)
        .prop_map(|s| s.into_iter().collect::<Vec<u16>>());
    let clustered =
        (0u16..64, prop::collection::btree_set(0u16..64, 0..33)).prop_map(|(base, offsets)| {
            offsets
                .into_iter()
                .map(|o| (base * 8 + o) % 512)
                .collect::<std::collections::BTreeSet<u16>>()
                .into_iter()
                .collect::<Vec<u16>>()
        });
    prop_oneof![uniform, clustered]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SAFER-32: the accelerated search picks exactly the subset the
    /// definitional scan picks (or agrees nothing separates the faults).
    #[test]
    fn safer32_partition_matches_reference(positions in arb_positions()) {
        let safer = Safer::new(32);
        prop_assert_eq!(safer.find_partition(&positions), ref_find_partition(32, &positions));
    }

    /// Same equivalence across the other group counts.
    #[test]
    fn all_group_counts_match_reference(
        groups in prop::sample::select(vec![2u32, 4, 8, 16, 64, 128, 256]),
        positions in arb_positions(),
    ) {
        let safer = Safer::new(groups);
        prop_assert_eq!(
            safer.find_partition(&positions),
            ref_find_partition(groups, &positions)
        );
    }

    /// `can_store` is exactly partition feasibility.
    #[test]
    fn can_store_is_partition_feasibility(positions in arb_positions()) {
        let safer = Safer::new(32);
        prop_assert_eq!(
            safer.can_store(&positions),
            ref_find_partition(32, &positions).is_some()
        );
    }
}

#[test]
fn guarantee_still_holds_after_acceleration() {
    // Any k+1 = 6 faults must be separable by SAFER-32 (MICRO'10 theorem);
    // spot-check structured worst cases the random suite may miss.
    let safer = Safer::new(32);
    assert!(safer.can_store(&[]));
    assert!(safer.can_store(&[7]));
    assert!(safer.can_store(&[0, 1, 2, 3, 4, 5]));
    assert!(safer.can_store(&[0, 64, 128, 192, 256, 320]));
    assert!(safer.can_store(&[511, 510, 509, 508, 507, 506]));
    // Duplicate positions can never be separated.
    assert!(!safer.can_store(&[9, 9]));
}
