//! Cross-scheme behavioural matrix: every hard-error scheme, exercised on
//! the same fault populations, must honour its documented guarantee and
//! its relative strength ordering.

use pcm_ecc::{find_window, Aegis, Ecp, HardErrorScheme, Safer, Secded};
use pcm_util::fault::{FaultMap, StuckAt};
use pcm_util::{seeded_rng, Line512};
use rand::seq::SliceRandom;
use rand::RngExt;

fn schemes() -> Vec<Box<dyn HardErrorScheme>> {
    vec![
        Box::new(Secded::new()),
        Box::new(Ecp::new(6)),
        Box::new(Safer::new(32)),
        Box::new(Aegis::new(17, 31)),
    ]
}

#[test]
fn guarantees_hold_on_random_fault_sets() {
    let mut rng = seeded_rng(71);
    let mut all: Vec<u16> = (0..512).collect();
    for scheme in schemes() {
        let g = scheme.guaranteed() as usize;
        for _ in 0..300 {
            all.shuffle(&mut rng);
            let mut faults = all[..g].to_vec();
            faults.sort_unstable();
            assert!(
                scheme.can_store(&faults),
                "{} must guarantee {g} faults (set {faults:?})",
                scheme.name()
            );
        }
    }
}

#[test]
fn empirical_strength_ordering() {
    // At 12 uniformly-placed faults: SECDED usually fails, ECP-6 always
    // fails, SAFER/Aegis usually succeed.
    let mut rng = seeded_rng(72);
    let mut all: Vec<u16> = (0..512).collect();
    let trials = 300;
    let mut success = [0usize; 4];
    let schemes = schemes();
    for _ in 0..trials {
        all.shuffle(&mut rng);
        let mut faults = all[..12].to_vec();
        faults.sort_unstable();
        for (i, s) in schemes.iter().enumerate() {
            if s.can_store(&faults) {
                success[i] += 1;
            }
        }
    }
    let [secded, ecp, safer, aegis] = success;
    assert_eq!(ecp, 0, "ECP-6 can never hold 12 faults");
    assert!(
        secded < trials / 2,
        "SECDED should usually fail at 12 faults, {secded}/{trials}"
    );
    assert!(
        safer > trials * 9 / 10,
        "SAFER should usually separate 12 faults, {safer}/{trials}"
    );
    // Aegis has only 18 partitions vs SAFER's 126 subsets, so its
    // probabilistic success rate at 12 faults is slightly lower.
    assert!(
        aegis > trials * 8 / 10,
        "Aegis should usually separate 12 faults, {aegis}/{trials}"
    );
}

#[test]
fn window_search_agrees_with_exhaustive_check() {
    // find_window's result must be exactly the first offset whose window
    // passes can_store.
    let mut rng = seeded_rng(73);
    let ecp = Ecp::new(6);
    for _ in 0..200 {
        let n = rng.random_range(0..40);
        let mut all: Vec<u16> = (0..512).collect();
        all.shuffle(&mut rng);
        let mut faults = all[..n].to_vec();
        faults.sort_unstable();
        let len = rng.random_range(1..=64);
        let got = find_window(&ecp, &faults, len);
        let expected = (0..=(64 - len)).find(|&o| {
            let lo = (o * 8) as u16;
            let hi = ((o + len) * 8) as u16;
            faults.iter().filter(|&&p| p >= lo && p < hi).count() <= 6
        });
        assert_eq!(got, expected, "faults {faults:?} len {len}");
    }
}

#[test]
fn write_paths_round_trip_at_their_guarantee() {
    // For each scheme: place exactly `guaranteed()` faults, store 100
    // random lines, read back exactly.
    let mut rng = seeded_rng(74);
    let ecp = Ecp::new(6);
    let safer = Safer::new(32);
    let aegis = Aegis::new(17, 31);
    let secded = Secded::new();

    let mut all: Vec<u16> = (0..512).collect();
    all.shuffle(&mut rng);

    // SECDED: one fault per word.
    let secded_faults: FaultMap = (0..8u16)
        .map(|w| StuckAt {
            pos: w * 64 + 13,
            value: w % 2 == 0,
        })
        .collect();
    // Others: 6 random faults.
    let shared: FaultMap = all[..6]
        .iter()
        .map(|&pos| StuckAt {
            pos,
            value: pos % 3 == 0,
        })
        .collect();

    for _ in 0..100 {
        let data = Line512::random(&mut rng);

        let (stored, code) = ecp.write(&data, &shared).unwrap();
        assert_eq!(ecp.read(&stored, &code), data);

        let (stored, code) = safer.write(&data, &shared).unwrap();
        assert_eq!(safer.read(&stored, &code), data);

        let (stored, code) = aegis.write(&data, &shared).unwrap();
        assert_eq!(aegis.read(&stored, &code), data);

        let (stored, code) = secded.write(&data, &secded_faults).unwrap();
        assert_eq!(secded.read(&stored, &code), data);
    }
}

#[test]
fn metadata_budgets_respect_the_ecc_dimm() {
    for scheme in schemes() {
        assert!(
            scheme.metadata_bits() <= 64,
            "{} uses {} bits, exceeding the 64-bit ECC chip budget",
            scheme.name(),
            scheme.metadata_bits()
        );
    }
}
