//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace derives serde traits on most public types so downstream
//! users *could* serialize them, but nothing in-tree serializes anything
//! (there is no `serde_json`/`bincode` in the dependency closure, and the
//! build environment is offline). These derives therefore expand to
//! nothing: the `#[derive(Serialize, Deserialize)]` attributes stay legal
//! and zero-cost, and the real serde can be swapped back in by pointing
//! the workspace dependency at crates.io.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
