//! Error-tolerance explorer: how compression stretches ECP/SAFER/Aegis.
//!
//! Reproduces the paper's §III-A.4 observation interactively: inject a
//! growing number of uniformly-placed stuck-at faults into a 512-bit line
//! and report, for each hard-error scheme, the probability that a
//! compressed payload of a given size still fits somewhere in the line.
//!
//! Run with: `cargo run --release --example error_tolerance`

use collab_pcm::ecc::montecarlo::{failure_probability, MonteCarlo};
use collab_pcm::ecc::{Aegis, Ecp, HardErrorScheme, Safer};
use collab_pcm::util::fault::{FaultMap, StuckAt};
use collab_pcm::util::Line512;
use rand::seq::SliceRandom;

fn main() {
    // Part 1: a concrete line. Kill 20 specific cells and watch the
    // schemes' write paths keep data intact.
    let mut rng = collab_pcm::util::seeded_rng(99);
    let mut positions: Vec<u16> = (0..512).collect();
    positions.shuffle(&mut rng);
    let faults: FaultMap = positions[..20]
        .iter()
        .map(|&pos| StuckAt {
            pos,
            value: pos % 2 == 0,
        })
        .collect();
    let data = Line512::random(&mut rng);

    println!("20 stuck cells injected. Can each scheme store arbitrary data?");
    let fault_positions: Vec<u16> = faults.iter().map(|f| f.pos).collect();
    let ecp = Ecp::new(6);
    let safer = Safer::new(32);
    let aegis = Aegis::new(17, 31);
    println!(
        "  ECP-6      guarantee {}: can_store(20 faults) = {}",
        ecp.guaranteed(),
        ecp.can_store(&fault_positions)
    );
    println!(
        "  SAFER-32   guarantee {}: can_store(20 faults) = {}",
        safer.guaranteed(),
        safer.can_store(&fault_positions)
    );
    println!(
        "  Aegis17x31 guarantee {}: can_store(20 faults) = {}",
        aegis.guaranteed(),
        aegis.can_store(&fault_positions)
    );

    if safer.can_store(&fault_positions) {
        let (stored, code) = safer.write(&data, &faults).expect("partition exists");
        assert_eq!(safer.read(&stored, &code), data);
        println!("  SAFER round-trips 512 bits through 20 stuck cells ✓");
    }

    // Part 2: the Fig. 9 sweep at a few spot sizes.
    println!("\nFailure probability vs fault count (2000 injections each):");
    println!("window  scheme      16 faults  32 faults  48 faults");
    let mc = MonteCarlo {
        injections: 2_000,
        seed: 5,
        threads: 0,
    };
    let schemes: [(&str, &dyn HardErrorScheme); 3] =
        [("ECP-6", &ecp), ("SAFER-32", &safer), ("Aegis", &aegis)];
    for window in [64usize, 32, 16] {
        for (name, scheme) in schemes {
            let p = |e| failure_probability(scheme, window, e, &mc);
            println!(
                "{window:>4}B   {name:<10}  {:>8.3}  {:>8.3}  {:>8.3}",
                p(16),
                p(32),
                p(48)
            );
        }
    }
    println!("\n(paper: at 32B and p=0.5, ECP-6 tolerates ~18 faults, SAFER ~38, Aegis ~41)");
}
