//! A guided replay of the paper's Fig. 4: the four scenarios of the
//! compression-window mechanism on a single memory line.
//!
//! 1. initial write — the compressed payload lands at the least
//!    significant bytes;
//! 2. steady state — faults inside the window stay within ECP-6's budget;
//! 3. sliding — the 7th fault in the window forces the window to move and
//!    healthy cells replace worn ones;
//! 4. resizing — a larger write-back needs a bigger contiguous region.
//!
//! Run with: `cargo run --release --example mechanism_walkthrough`

use collab_pcm::compress::{compress_best, CompressedWrite, Method};
use collab_pcm::core::line::{EccEngine, ManagedLine, Payload};
use collab_pcm::core::EccChoice;
use collab_pcm::util::Line512;

fn compressible(tag: u8) -> Line512 {
    // Eight small 64-bit values: BDI-compressible to 16 bytes.
    let mut bytes = [0u8; 64];
    for i in 0..8 {
        bytes[i * 8] = tag.wrapping_add(i as u8);
    }
    Line512::from_bytes(&bytes)
}

fn write(line: &mut ManagedLine, engine: &EccEngine, data: Line512) -> (usize, usize) {
    let c = compress_best(&data);
    let r = line
        .write(
            engine,
            Payload {
                method: c.method(),
                bytes: c.bytes(),
            },
            0,
            true,
        )
        .expect("line still serviceable");
    // Verify the read path end-to-end.
    let (method, bytes) = line.read(engine).expect("valid");
    let back = collab_pcm::compress::decompress(
        &CompressedWrite::from_parts(method, bytes).expect("consistent"),
    );
    assert_eq!(back, data, "stored data must read back exactly");
    (r.offset, c.size())
}

fn main() {
    let engine = EccEngine::new(EccChoice::Ecp6);

    // A line whose first 20 cells are about to die (they survive exactly
    // one programming event) — the worn LSB region of Fig. 4's scenario 3.
    let mut endurance = vec![u32::MAX; 512];
    for e in endurance.iter_mut().take(20) {
        *e = 1;
    }
    let mut line = ManagedLine::with_endurance(endurance);

    println!("(1) initial write: compressed payload at the least significant bytes");
    let (offset, size) = write(&mut line, &engine, compressible(1));
    println!(
        "    window = [{offset}, {}) bytes, {size}B compressed payload",
        offset + size
    );
    assert_eq!(offset, 0);

    println!("(2) steady state: rewrites wear the window cells; ECP-6 covers early faults");
    for tag in 2..6 {
        write(&mut line, &engine, compressible(tag));
    }
    println!(
        "    faults so far: {} (ECP-6 tolerates 6 anywhere)",
        line.faults().count()
    );

    println!("(3) sliding: the weak LSB cells exceed ECP-6's budget inside the window");
    let mut slid_to = 0;
    for tag in 6..30 {
        let (offset, _) = write(&mut line, &engine, compressible(tag));
        if offset != 0 {
            slid_to = offset;
            break;
        }
    }
    println!(
        "    window slid to byte {slid_to}; line now tolerates {} faults — more than ECP-6 alone ever could",
        line.faults().count()
    );
    assert!(slid_to > 0, "the window must move off the dead cells");
    assert!(
        line.faults().count() > 6,
        "more faults than plain ECP-6 tolerates"
    );

    println!("(4) resizing: an incompressible write needs the whole line");
    let mut rng = collab_pcm::util::seeded_rng(4);
    let random = Line512::random(&mut rng);
    let c = compress_best(&random);
    assert_eq!(c.method(), Method::Uncompressed);
    match line.write(&engine, Payload { method: c.method(), bytes: c.bytes() }, 0, true) {
        Ok(r) => println!("    64B write stored (offset {}) — fault count still within budget", r.offset),
        Err(e) => println!("    64B write failed ({e}) — the block is dead *for this data*, but a compressible block could still resurrect it"),
    }

    let can_host_small = line.can_host(&engine, 16, 0, true).is_some();
    println!(
        "    resurrection check: a 16B payload {} fit this line",
        if can_host_small { "would" } else { "would not" }
    );
    assert!(
        can_host_small,
        "plenty of healthy cells remain for small payloads"
    );
}
