//! Lifetime campaign: the paper's headline experiment on one workload.
//!
//! Runs the accelerated lifetime engine for all four systems (Baseline,
//! Comp, Comp+W, Comp+WF) on a chosen SPEC-like workload and prints
//! normalized lifetimes, flips per write, and tolerated-fault depth —
//! a single row of Fig. 10 / Fig. 12 / Table IV.
//!
//! Run with: `cargo run --release --example lifetime_campaign [app]`
//!
//! Pass `--quick` for a seconds-long smoke run (used by the CI gate).

use collab_pcm::core::lifetime::{run_campaign, CampaignConfig, LineSimConfig};
use collab_pcm::core::{SystemConfig, SystemKind};
use collab_pcm::trace::profile::ALL_APPS;
use collab_pcm::trace::SpecApp;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let app = std::env::args()
        .skip(1)
        .find(|a| a.as_str() != "--quick")
        .map(|name| {
            ALL_APPS
                .iter()
                .copied()
                .find(|a| a.name().eq_ignore_ascii_case(&name))
                .unwrap_or_else(|| {
                    eprintln!("unknown app '{name}', expected one of:");
                    for a in ALL_APPS {
                        eprintln!("  {}", a.name());
                    }
                    std::process::exit(2);
                })
        })
        .unwrap_or(SpecApp::Milc);

    println!(
        "workload: {} (WPKI {}, target CR {})",
        app.name(),
        app.profile().wpki,
        app.profile().target_cr
    );
    println!("system     lifetime(writes/line)  normalized  flips/write  faults@death  revived");

    let endurance_mean = if quick { 1e3 } else { 2e4 };
    let mut baseline_writes = None;
    for kind in SystemKind::ALL {
        let system = SystemConfig::new(kind).with_endurance_mean(endurance_mean);
        let line = LineSimConfig::new(system, app.profile());
        let mut cfg = CampaignConfig::new(line, 2017);
        cfg.lines = if quick { 16 } else { 96 };
        let r = run_campaign(&cfg);
        let writes = r.lifetime_writes();
        let norm = match baseline_writes {
            None => {
                baseline_writes = Some(writes);
                1.0
            }
            Some(base) => writes as f64 / base as f64,
        };
        println!(
            "{:<10} {:>20}  {:>9.2}x  {:>11.1}  {:>12.1}  {:>6.0}%",
            kind.to_string(),
            writes,
            norm,
            r.mean_flips_per_write,
            r.mean_faults_at_death.unwrap_or(0.0),
            100.0 * r.lines_revived
        );
    }
    println!(
        "\n(paper Fig. 10: Comp 1.35x / Comp+W 3.2x / Comp+WF 4.3x on average; \
              highly compressible apps reach ~10x)"
    );
}
