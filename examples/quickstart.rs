//! Quickstart: a compressed, fault-tolerant PCM memory in a dozen lines.
//!
//! Builds the paper's full Comp+WF system (BDI/FPC compression, sliding
//! compression window, ECP-6, Start-Gap, intra-line wear-leveling) over a
//! small simulated memory, then demonstrates that data survives both
//! ordinary operation and cell wear-out.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Pass `--quick` for a seconds-long smoke run (used by the CI gate).

use collab_pcm::core::{PcmMemory, SystemConfig, SystemKind};
use collab_pcm::util::Line512;
use rand::RngExt;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // A deliberately fragile memory: cells endure only ~2000 writes, so
    // wear-out happens before your coffee cools (quick mode: ~500).
    let endurance = if quick { 500.0 } else { 2_000.0 };
    let cfg = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(endurance);
    let mut memory = PcmMemory::new(cfg, if quick { 16 } else { 64 }, 42);
    let mut rng = collab_pcm::util::seeded_rng(7);

    // Write a mix of compressible and incompressible lines.
    let sparse = Line512::from_fn(|i| i % 64 == 0); // compresses to a few bytes
    let dense = Line512::random(&mut rng); // stored verbatim
    memory.write(0, sparse).expect("write sparse");
    memory.write(1, dense).expect("write dense");
    assert_eq!(memory.read(0).unwrap(), sparse);
    assert_eq!(memory.read(1).unwrap(), dense);
    println!(
        "round-trip OK: sparse line decompresses ({} cy), dense line is verbatim ({} cy)",
        memory.read_decompression_cycles(0),
        memory.read_decompression_cycles(1)
    );

    // Hammer one line until cells start dying; the sliding window and
    // ECP-6 keep the data correct long past the first stuck cells.
    let mut writes = 0u64;
    loop {
        let mut bytes = [0u8; 64];
        bytes[0] = rng.random();
        bytes[1] = rng.random();
        let data = Line512::from_bytes(&bytes);
        match memory.write(2, data) {
            Ok(_) => {
                writes += 1;
                assert_eq!(memory.read(2).unwrap(), data, "data must survive wear");
            }
            Err(e) => {
                println!("line 2 retired after {writes} writes ({e})");
                break;
            }
        }
        if writes % 25_000 == 0 && writes > 0 {
            println!("  {writes} writes and counting...");
        }
    }

    let stats = memory.stats();
    println!(
        "stats: {} demand writes, {} gap moves, {} cells stuck, {} compressed writes, {} resurrections",
        stats.demand_writes, stats.gap_moves, stats.new_faults,
        stats.compressed_writes, stats.resurrections
    );
    println!(
        "memory health: {:.1}% of physical lines dead",
        100.0 * memory.dead_fraction()
    );
}
