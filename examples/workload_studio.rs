//! Workload studio: inspect the synthetic SPEC-like trace generator.
//!
//! Shows, for every workload profile, the statistics the generator was
//! calibrated to (Table III / Figs. 3, 6) plus a live sample of one block's
//! compressed-size trajectory — the raw material every lifetime result is
//! built from.
//!
//! Run with: `cargo run --release --example workload_studio`

use collab_pcm::compress::compress_best;
use collab_pcm::trace::calibrate::{compression_stats, size_change_probability};
use collab_pcm::trace::profile::ALL_APPS;
use collab_pcm::trace::{BlockStream, TraceGenerator};

fn main() {
    println!("app         WPKI   CR(tgt)  CR(real)  P(size chg)  uncmp%  fpc-win%");
    for app in ALL_APPS {
        let profile = app.profile();
        let mut generator = TraceGenerator::from_profile(profile.clone(), 256, 11);
        let stats = compression_stats(&mut generator, 6_000);
        let mut g2 = TraceGenerator::from_profile(profile.clone(), 64, 12);
        let size_change = size_change_probability(&mut g2, 6_000);
        println!(
            "{:<11} {:>5.2}  {:>6.2}  {:>7.2}  {:>10.2}  {:>6.1}  {:>7.1}",
            app.name(),
            profile.wpki,
            profile.target_cr,
            stats.cr,
            size_change,
            100.0 * stats.uncompressed_fraction,
            100.0 * stats.fpc_win_fraction,
        );
    }

    println!("\nOne bzip2 block's compressed sizes over 32 consecutive writes:");
    let mut stream = BlockStream::new(collab_pcm::trace::SpecApp::Bzip2.profile(), 4);
    let sizes: Vec<String> = (0..32)
        .map(|_| compress_best(&stream.next_data()).size().to_string())
        .collect();
    println!("  {}", sizes.join(" "));

    println!("\nOne hmmer block (stable sizes) over 32 consecutive writes:");
    let mut stream = BlockStream::new(collab_pcm::trace::SpecApp::Hmmer.profile(), 4);
    let sizes: Vec<String> = (0..32)
        .map(|_| compress_best(&stream.next_data()).size().to_string())
        .collect();
    println!("  {}", sizes.join(" "));
}
